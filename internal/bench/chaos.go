package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"slicing/internal/chaos"
	"slicing/internal/distmat"
	"slicing/internal/fabric"
	rt "slicing/internal/runtime"
	"slicing/internal/serve"
	"slicing/internal/shmem"
)

// ServeChaosOptions sizes the RunServeChaos fault storm. The zero value
// selects the ISSUE acceptance workload: 4 PEs, 16³ multiplies, 64
// concurrent clients across 4 tenants, a seeded 1% transient storm on
// gets and accumulates, and one rail degraded mid-run.
type ServeChaosOptions struct {
	P         int     // PEs (default 4)
	Dim       int     // square multiply dimension (default 16)
	TileDim   int     // partition tile (default Dim/2)
	Workers   int     // concurrent clients (default 64)
	Tenants   int     // tenants the clients spread over (default 4)
	PerWorker int     // requests per client (default 10)
	Batch     int     // server batch size (default 8)
	Rate      float64 // transient fault rate per op (default 0.01)
	Seed      int64   // chaos seed (default 42)
}

func (o ServeChaosOptions) withDefaults() ServeChaosOptions {
	if o.P <= 0 {
		o.P = 4
	}
	if o.Dim <= 0 {
		o.Dim = 16
	}
	if o.TileDim <= 0 {
		o.TileDim = o.Dim / 2
	}
	if o.Workers <= 0 {
		o.Workers = 64
	}
	if o.Tenants <= 0 {
		o.Tenants = 4
	}
	if o.PerWorker <= 0 {
		o.PerWorker = 10
	}
	if o.Batch <= 0 {
		o.Batch = 8
	}
	if o.Rate <= 0 {
		o.Rate = 0.01
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// ServeChaosResult reports one chaos serving run: availability and tail
// latency under the storm against the same workload on a healthy world.
type ServeChaosResult struct {
	Requests        int     // total requests issued under the storm
	AvailabilityPct float64 // completed / issued, percent
	P99MsFaulty     float64 // p99 latency under the storm
	P99MsClean      float64 // p99 latency of the identical healthy run
	RetriesPerReq   float64 // transparently recovered faults per request
	Transients      int64   // injected transient failures
	Degrades        int64   // rails degraded (1: the mid-run rule fired)
}

// TwoRailFabric is the chaos bench's hand-built rail-redundant cluster: 2
// machines of 2 PEs, each PE PCIe-attached to one of the machine's 2 NICs
// (PE i rides rail i%2), per-machine local switch for intra-machine
// traffic, one shared switch per rail, and a spine joining the rails for
// rail-crossing flows. Small enough to read in one sitting, structured
// enough that degrading one rail leaves a redundant path — the topology
// the DegradeRail storm rule downtrains mid-run.
func TwoRailFabric() *fabric.Fabric {
	const gb, us = 1e9, 1e-6
	f := fabric.New("2x2 two-rail cluster", 2000*gb)
	rails := [2]int{
		f.AddSwitch("rail0"),
		f.AddSwitch("rail1"),
	}
	spine := f.AddSwitch("spine")
	for r, rail := range rails {
		f.BiConnect(rail, spine, 100*gb, 1*us, fmt.Sprintf("rail%d.spine", r))
	}
	for m := 0; m < 2; m++ {
		sw := f.AddSwitch(fmt.Sprintf("m%d.sw", m))
		var nics [2]int
		for r := range nics {
			nics[r] = f.AddNIC(fmt.Sprintf("m%d.nic%d", m, r))
			f.BiConnect(nics[r], rails[r], 50*gb, 3*us, fmt.Sprintf("m%d.nic%d.ib", m, r))
		}
		for g := 0; g < 2; g++ {
			pe := f.AddPE(fmt.Sprintf("m%d.pe%d", m, g), m)
			f.BiConnect(pe, sw, 450*gb, 1*us, fmt.Sprintf("m%d.pe%d.local", m, g))
			f.BiConnect(pe, nics[g%2], 450*gb, 2*us, fmt.Sprintf("m%d.pe%d.pcie", m, g))
		}
	}
	return f.Freeze()
}

// stormRules is the acceptance storm: rate transient failures on gets and
// accumulates, plus one mid-run degrade of rail 0's spine uplink.
func stormRules(rate float64) []chaos.Rule {
	return []chaos.Rule{
		{Name: "get-storm", Ops: chaos.OpGet, Rate: rate},
		{Name: "accum-storm", Ops: chaos.OpAccum, Rate: rate},
		{Name: "rail-down", Kind: chaos.DegradeRail, Ops: chaos.OpGet,
			Rate: 1, After: 50, Link: "rail0.spine>", Factor: 0.25},
	}
}

// runServeStorm drives the chaos workload against one world (chaos-
// wrapped or healthy) with the default serving config.
func runServeStorm(o ServeChaosOptions, w rt.World) (lat []time.Duration, completed int, st serve.Stats) {
	return runServeConfigured(o, w, serve.Config{})
}

// runServeConfigured drives the chaos workload against one world under
// the given serving config (batch and queue sizing is overridden from
// the options) and returns per-request latencies, the completed count,
// and the server's fault accounting.
func runServeConfigured(o ServeChaosOptions, w rt.World, cfg serve.Config) (lat []time.Duration, completed int, st serve.Stats) {
	part := distmat.Custom{TileRows: o.TileDim, TileCols: o.TileDim, ProcRows: 2, ProcCols: o.P / 2}
	a := distmat.New(w, o.Dim, o.Dim, part, 1)
	b := distmat.New(w, o.Dim, o.Dim, part, 1)
	cs := make([]*distmat.Matrix, o.Workers)
	for i := range cs {
		cs[i] = distmat.New(w, o.Dim, o.Dim, part, 1)
	}
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 1)
		b.FillRandom(pe, 2)
	})
	cfg.Batch = o.Batch
	cfg.Queue = 2 * o.Workers * o.PerWorker
	s := serve.NewServer(w, cfg)
	lats := make([][]time.Duration, o.Workers)
	var done sync.WaitGroup
	var okCount sync.Map
	for i := 0; i < o.Workers; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			tn := fmt.Sprintf("tenant-%d", i%o.Tenants)
			ok := 0
			l := make([]time.Duration, 0, o.PerWorker)
			for j := 0; j < o.PerWorker; j++ {
				t0 := time.Now()
				if _, err := s.Multiply(context.Background(), tn, cs[i], a, b); err == nil {
					ok++
					l = append(l, time.Since(t0))
				}
			}
			lats[i] = l
			okCount.Store(i, ok)
		}(i)
	}
	done.Wait()
	st = s.Stats()
	s.Close()
	for i := range lats {
		lat = append(lat, lats[i]...)
		if v, loaded := okCount.Load(i); loaded {
			completed += v.(int)
		}
	}
	return lat, completed, st
}

// RunServeChaos measures graceful degradation of the serving loop under
// the seeded acceptance storm: the same 64-client workload runs once on a
// healthy world and once under the chaos plan (1% transient gets and
// accumulates, one rail degraded mid-run), reporting availability, the
// faulty and clean p99, and the retry cost per request.
func RunServeChaos(o ServeChaosOptions) ServeChaosResult {
	o = o.withDefaults()

	cleanLat, _, _ := runServeStorm(o, shmem.NewWorld(o.P))

	plan := &chaos.Plan{Seed: o.Seed, Rules: stormRules(o.Rate), Fabric: TwoRailFabric()}
	w := chaos.WrapWorld(shmem.NewWorld(o.P), plan)
	cw, _ := chaos.Of(w)
	faultyLat, completed, st := runServeStorm(o, w)

	total := o.Workers * o.PerWorker
	res := ServeChaosResult{
		Requests:        total,
		AvailabilityPct: 100 * float64(completed) / float64(total),
		Transients:      cw.Injected().Transient,
		Degrades:        cw.Injected().Degrades,
	}
	if total > 0 {
		res.RetriesPerReq = float64(st.Retries) / float64(total)
	}
	_, res.P99MsFaulty = percentiles(faultyLat)
	_, res.P99MsClean = percentiles(cleanLat)
	return res
}
