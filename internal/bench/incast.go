package bench

import (
	"fmt"

	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/simbackend"
	"slicing/internal/simnet"
)

// IncastStorm prices the canonical incast scenario on a simnet-timed
// world over topo: one sender GPU per node pushes elems float32 into a
// distinct GPU of node 0. Node i (1 ≤ i ≤ sending nodes) sends from its
// GPU senderGPU(i) to GPU i-1 of node 0, at offset 0 of the target's
// segment, so the symmetric heap stays one transfer wide per PE.
//
// This single driver backs the acceptance test
// (internal/fabric/backend_test.go), the committed baseline anchor
// (cmd/bench_baseline), and the examples/fabric_incast walkthrough, so
// the three always measure the same storm. On a scalar cluster topology
// every flow has distinct endpoints and runs in parallel; on a routed
// fabric the flows contend on whatever links their routes share (a
// single-NIC node's downlink, an oversubscribed spine uplink).
//
// The world is returned alongside the predicted seconds so callers can
// read runtime.FabricStatsOf for per-link accounting. The number of
// sending nodes is topo's node count minus one and may not exceed
// perNode, since each flow needs a distinct destination GPU on node 0.
func IncastStorm(topo simnet.Topology, dev gpusim.Device, perNode, elems int, senderGPU func(node int) int) (float64, rt.World) {
	p := topo.NumPE()
	senders := p/perNode - 1
	if p%perNode != 0 || senders < 1 || senders > perNode {
		panic(fmt.Sprintf("bench: incast needs 2..%d nodes of %d PEs, topology has %d PEs", perNode+1, perNode, p))
	}
	w := simbackend.New(topo, dev).NewWorld(p).(rt.TimedWorld)
	seg := w.AllocSymmetric(elems)
	w.Run(func(pe rt.PE) {
		node := pe.Rank() / perNode
		if node >= 1 && pe.Rank()%perNode == senderGPU(node) {
			pe.Put(make([]float32, elems), seg, node-1, 0)
		}
	})
	return w.PredictedSeconds(), w
}
