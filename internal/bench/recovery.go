package bench

import (
	"sort"

	"slicing/internal/chaos"
	"slicing/internal/serve"
	"slicing/internal/shmem"
)

// ServeRecoveryOptions sizes the RunServeRecovery crash storm. The zero
// value selects the ISSUE acceptance workload: 4 PEs, 16³ multiplies, 64
// concurrent clients across 4 tenants, a seeded transient drizzle, one
// rank crashed mid-run — and the serving loop's failover switched on.
type ServeRecoveryOptions struct {
	P          int     // PEs (default 4)
	Dim        int     // square multiply dimension (default 16)
	TileDim    int     // partition tile (default Dim/2)
	Workers    int     // concurrent clients (default 64)
	Tenants    int     // tenants the clients spread over (default 4)
	PerWorker  int     // requests per client (default 10)
	Batch      int     // server batch size (default 8)
	Rate       float64 // transient fault rate per op (default 0.01)
	Seed       int64   // chaos seed (default 42)
	CrashAfter int     // ops before the crash rule arms (default 200)
}

func (o ServeRecoveryOptions) withDefaults() ServeRecoveryOptions {
	c := ServeChaosOptions{P: o.P, Dim: o.Dim, TileDim: o.TileDim,
		Workers: o.Workers, Tenants: o.Tenants, PerWorker: o.PerWorker,
		Batch: o.Batch, Rate: o.Rate, Seed: o.Seed}.withDefaults()
	o.P, o.Dim, o.TileDim = c.P, c.Dim, c.TileDim
	o.Workers, o.Tenants, o.PerWorker = c.Workers, c.Tenants, c.PerWorker
	o.Batch, o.Rate, o.Seed = c.Batch, c.Rate, c.Seed
	if o.CrashAfter <= 0 {
		o.CrashAfter = 200
	}
	return o
}

// ServeRecoveryResult reports one failover run: how much of the load the
// server kept serving through a rank death, and what the repair cost.
type ServeRecoveryResult struct {
	Requests        int     // total requests issued under the storm
	AvailabilityPct float64 // completed / issued, percent
	RecoveredReqs   int64   // requests that completed via replan-and-replay
	Replans         int64   // plan-repair attempts across the run
	ReplanMsP99     float64 // p99 of per-attempt replan latency, ms
	Crashes         int64   // rank crashes injected (1: the rule fired)
	Heals           int64   // rank revivals injected
	P99Ms           float64 // p99 request latency through the storm
}

// recoveryRules is the failover storm: the transient drizzle of the
// acceptance storm, one rank crashed mid-run, and a later heal that folds
// it back in — the full kill/recover/heal cycle under serving load.
func recoveryRules(rate float64, crashAfter int) []chaos.Rule {
	return []chaos.Rule{
		{Name: "get-drizzle", Ops: chaos.OpGet, Rate: rate},
		{Name: "die", Kind: chaos.Crash, Ranks: []int{1}, Rate: 1, After: crashAfter, MaxFires: 1},
		// Crashed ranks draw no sequence numbers, so survivor traffic
		// necessarily drives the heal.
		{Name: "mend", Kind: chaos.Heal, Target: 1, Rate: 1, After: 4 * crashAfter, MaxFires: 1},
	}
}

// RunServeRecovery measures the serving loop's failover: the chaos
// workload runs with Config.Recover enabled while a seeded plan crashes
// one rank mid-multiply and later heals it. Availability counts every
// request that completed — including those absorbed by replan-and-replay
// against the surviving world.
func RunServeRecovery(o ServeRecoveryOptions) ServeRecoveryResult {
	o = o.withDefaults()

	plan := &chaos.Plan{Seed: o.Seed, Rules: recoveryRules(o.Rate, o.CrashAfter)}
	w := chaos.WrapWorld(shmem.NewWorld(o.P), plan)
	cw, _ := chaos.Of(w)
	co := ServeChaosOptions{P: o.P, Dim: o.Dim, TileDim: o.TileDim,
		Workers: o.Workers, Tenants: o.Tenants, PerWorker: o.PerWorker,
		Batch: o.Batch, Rate: o.Rate, Seed: o.Seed}
	lat, completed, st := runServeConfigured(co, w, serve.Config{Recover: true})

	total := o.Workers * o.PerWorker
	res := ServeRecoveryResult{
		Requests:      total,
		RecoveredReqs: st.Recovered,
		Replans:       st.Replans,
		Crashes:       cw.Injected().Crashes,
		Heals:         cw.Injected().Heals,
	}
	if total > 0 {
		res.AvailabilityPct = 100 * float64(completed) / float64(total)
	}
	res.ReplanMsP99 = p99Float(st.ReplanMs)
	_, res.P99Ms = percentiles(lat)
	return res
}

// p99Float is percentiles' tail for plain millisecond samples.
func p99Float(ms []float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	s := append([]float64(nil), ms...)
	sort.Float64s(s)
	return s[int(0.99*float64(len(s)-1))]
}
