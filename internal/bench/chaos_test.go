package bench

import "testing"

// The chaos harness at the committed acceptance scale (4 PEs, 16³, 64
// clients, 4 tenants): a transient-only storm plus one degraded rail must
// leave availability at 99%+ with the storm demonstrably real — injected
// transients, a positive retry bill, and exactly one rail downtrained.
func TestServeChaosAcceptance(t *testing.T) {
	res := RunServeChaos(ServeChaosOptions{PerWorker: 4})
	if res.Requests != 64*4 {
		t.Fatalf("issued %d requests, want 256", res.Requests)
	}
	if res.AvailabilityPct < 99 {
		t.Fatalf("availability %.2f%% under the storm, want >= 99%%", res.AvailabilityPct)
	}
	if res.Transients == 0 || res.RetriesPerReq <= 0 {
		t.Fatalf("storm exercised nothing: %+v", res)
	}
	if res.Degrades != 1 {
		t.Fatalf("degraded %d rails, want exactly the one mid-run rule", res.Degrades)
	}
	if res.P99MsFaulty <= 0 || res.P99MsClean <= 0 {
		t.Fatalf("missing latency percentiles: %+v", res)
	}
}

// TwoRailFabric is the degrade target of the committed storm: the rail
// rule's link must exist and rails must be redundant (degrading rail 0
// leaves every PE pair connected — Freeze would have panicked otherwise,
// so this pins the name contract the storm rule depends on).
func TestTwoRailFabricHasTheStormRail(t *testing.T) {
	f := TwoRailFabric()
	if f.NumPE() != 4 {
		t.Fatalf("two-rail fabric has %d PEs, want 4", f.NumPE())
	}
	li := f.LinkID("rail0.spine>")
	before := f.LinkBandwidth(li)
	f.DegradeAt(li, 0.25)
	if got := f.LinkBandwidth(li); got != before*0.25 {
		t.Fatalf("rail0.spine> bandwidth %g after degrade, want %g", got, before*0.25)
	}
}
