package chaos_test

// The chaos conformance suite: every backend, wrapped in the fault
// injector and hammered with a seeded transient storm, must still produce
// C within 1e-4 of the naive reference — the retry layer makes injected
// transients invisible to results — with pooled buffers balanced and the
// no-fault interception path allocation-free. Fatal faults must surface
// as errors from Multiply without wedging the world or leaking slots.

import (
	"errors"
	"sync/atomic"
	"testing"

	"slicing/internal/chaos"
	"slicing/internal/distmat"
	"slicing/internal/gpubackend"
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/simbackend"
	"slicing/internal/simnet"
	"slicing/internal/tile"
	"slicing/internal/universal"
)

func chaosBackends() []rt.Backend {
	topo := simnet.NewUniform(4, 100e9, 1e12, 1e-6, "chaos")
	dev := gpusim.PresetPVCDevice()
	return []rt.Backend{
		shmem.Backend{},
		simbackend.New(topo, dev),
		gpubackend.New(topo, dev),
	}
}

// stormPlan is the standard transient-only storm: a slice of gets and
// accumulates fail retryably. At 8% the storm is dense enough that every
// run injects faults; the retry budget must be sized to match (see
// stormRetryAttempts) or P[budget consecutive fires] ≈ rateᴬ summed over
// thousands of ops escalates some op to fatal in a fair fraction of runs.
func stormPlan(seed int64) *chaos.Plan {
	return &chaos.Plan{Seed: seed, Rules: []chaos.Rule{
		{Name: "get-storm", Ops: chaos.OpGet, Rate: 0.08},
		{Name: "accum-storm", Ops: chaos.OpAccum, Rate: 0.08},
	}}
}

// stormRetryAttempts sizes the budget to the 8% storm: 0.08⁶ ≈ 2.6e-7
// per op, negligible across the whole suite.
const stormRetryAttempts = 6

// runChaosMultiply runs one universal multiply on a chaos-wrapped world
// and returns the gathered C, the reference product, the chaos state, and
// the per-rank errors.
func runChaosMultiply(t *testing.T, b rt.Backend, plan *chaos.Plan, pool *gpusim.Pool) (got, want *tile.Matrix, cw *chaos.World, errs []error) {
	t.Helper()
	const p, m, n, k = 4, 90, 70, 50
	w := chaos.Wrap(b, plan).NewWorld(p)
	cw, ok := chaos.Of(w)
	if !ok {
		t.Fatal("chaos.Of failed on a wrapped world")
	}
	// Misaligned partitions force sub-tile gets and remote accumulates on
	// every rank — plenty of interceptable one-sided traffic.
	a := distmat.New(w, m, k, distmat.RowBlock{}, 1)
	bm := distmat.New(w, k, n, distmat.ColBlock{}, 1)
	c := distmat.New(w, m, n, distmat.Custom{TileRows: 13, TileCols: 11, ProcRows: 2, ProcCols: 2}, 1)
	cfg := universal.DefaultConfig()
	cfg.Pool = pool
	cfg.Retry.Attempts = stormRetryAttempts
	errs = make([]error, p)
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 31)
		bm.FillRandom(pe, 32)
		pe.Barrier()
		if pe.Rank() == 0 {
			fullA := a.Gather(pe, 0)
			fullB := bm.Gather(pe, 0)
			want = tile.New(m, n)
			tile.GemmNaive(want, fullA, fullB)
		}
		_, errs[pe.Rank()] = universal.Multiply(pe, c, a, bm, cfg)
		pe.Barrier()
		if pe.Rank() == 0 {
			got = c.Gather(pe, 0)
		}
	})
	return got, want, cw, errs
}

// TestChaosConformanceAcrossBackends is the headline acceptance test:
// under a seeded transient-only storm, all three backends produce C
// within 1e-4 of GemmNaive, the retry counter shows the storm was real,
// and the executor's pooled buffers balance to zero.
func TestChaosConformanceAcrossBackends(t *testing.T) {
	for _, b := range chaosBackends() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			var retries atomic.Int64
			pool := gpusim.NewPool()
			plan := stormPlan(1234)
			// Thread the shared retry counter through the executor config.
			const p, m, n, k = 4, 90, 70, 50
			w := chaos.Wrap(b, plan).NewWorld(p)
			cw, _ := chaos.Of(w)
			a := distmat.New(w, m, k, distmat.RowBlock{}, 1)
			bm := distmat.New(w, k, n, distmat.ColBlock{}, 1)
			c := distmat.New(w, m, n, distmat.Custom{TileRows: 13, TileCols: 11, ProcRows: 2, ProcCols: 2}, 1)
			cfg := universal.DefaultConfig()
			cfg.Pool = pool
			cfg.Retry.Attempts = stormRetryAttempts
			cfg.Retry.Retries = &retries
			var got, want *tile.Matrix
			w.Run(func(pe rt.PE) {
				a.FillRandom(pe, 31)
				bm.FillRandom(pe, 32)
				pe.Barrier()
				if pe.Rank() == 0 {
					want = tile.New(m, n)
					tile.GemmNaive(want, a.Gather(pe, 0), bm.Gather(pe, 0))
				}
				if _, err := universal.Multiply(pe, c, a, bm, cfg); err != nil {
					t.Errorf("rank %d under transient storm: %v", pe.Rank(), err)
				}
				pe.Barrier()
				if pe.Rank() == 0 {
					got = c.Gather(pe, 0)
				}
			})
			if d := maxRelDiff(want, got); d > 1e-4 {
				t.Errorf("max rel diff %g vs GemmNaive under storm", d)
			}
			if inj := cw.Injected(); inj.Transient == 0 {
				t.Error("storm injected no transients — the test exercised nothing")
			}
			if retries.Load() == 0 {
				t.Error("retry counter stayed zero under an active storm")
			}
			if live := pool.Stats().Live; live != 0 {
				t.Errorf("%d pooled elements leaked under the storm", live)
			}
		})
	}
}

// TestChaosScheduleReproducibleAcrossRuns pins the acceptance criterion
// that one seed reproduces the identical fault schedule twice on the same
// workload — per backend, since each backend issues ops differently.
func TestChaosScheduleReproducibleAcrossRuns(t *testing.T) {
	for _, mk := range []func() rt.Backend{
		func() rt.Backend { return shmem.Backend{} },
		func() rt.Backend {
			return simbackend.New(simnet.NewUniform(4, 100e9, 1e12, 1e-6, "chaos"), gpusim.PresetPVCDevice())
		},
	} {
		plan := stormPlan(777)
		first, _, cw1, errs1 := runChaosMultiply(t, mk(), plan, gpusim.NewPool())
		second, _, cw2, errs2 := runChaosMultiply(t, mk(), plan, gpusim.NewPool())
		for r := range errs1 {
			if errs1[r] != nil || errs2[r] != nil {
				t.Fatalf("rank %d errored under a transient-only storm: run1=%v run2=%v", r, errs1[r], errs2[r])
			}
		}
		f1, f2 := cw1.Fires(), cw2.Fires()
		if len(f1) == 0 {
			t.Fatal("storm never fired")
		}
		if len(f1) != len(f2) {
			t.Fatalf("schedules differ in size: %d vs %d fires", len(f1), len(f2))
		}
		for i := range f1 {
			if f1[i] != f2[i] {
				t.Fatalf("schedule diverged at fire %d: %v vs %v", i, f1[i], f2[i])
			}
		}
		// The fault *schedule* is pinned exactly above; the numeric results
		// only to 1e-4, because which op absorbs which retried seq — and
		// hence the float32 accumulation order — is interleaving-dependent.
		if d := maxRelDiff(first, second); d > 1e-4 {
			t.Fatalf("same seed, different results: max rel diff %g", d)
		}
	}
}

// TestChaosCrashSurfacesAsError: a whole-PE crash must come back as an
// ErrPEFailed error from Multiply on the crashed rank — not a deadlock,
// not a panic — with every pooled buffer back in the pool afterwards.
func TestChaosCrashSurfacesAsError(t *testing.T) {
	for _, b := range chaosBackends() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			plan := &chaos.Plan{Seed: 5, Rules: []chaos.Rule{
				{Name: "die", Kind: chaos.Crash, Ranks: []int{2}, Rate: 1, After: 3},
			}}
			pool := gpusim.NewPool()
			_, _, cw, errs := runChaosMultiply(t, b, plan, pool)
			if !errors.Is(errs[2], rt.ErrPEFailed) {
				t.Fatalf("crashed rank error: %v", errs[2])
			}
			if !cw.Crashed(2) {
				t.Fatal("rank 2 not marked crashed")
			}
			// Other ranks may or may not error (their accumulates onto the
			// dead rank's tiles still succeed — the shared memory is fine,
			// only rank 2's initiations fail), but none may deadlock, and
			// the pool must balance.
			if live := pool.Stats().Live; live != 0 {
				t.Fatalf("%d pooled elements leaked across the crash", live)
			}
		})
	}
}

// TestChaosInterceptAllocFree guards the no-fault hot path: an in-scope
// one-sided op through the chaos wrapper with no firing rule must not
// allocate — injection is a hash and a few atomic loads, nothing more.
func TestChaosInterceptAllocFree(t *testing.T) {
	plan := &chaos.Plan{Seed: 1, Rules: []chaos.Rule{{Name: "cold", Rate: 0}}}
	w := chaos.WrapWorld(shmem.NewWorld(1), plan)
	w.Run(func(pe rt.PE) {
		seg := pe.AllocSymmetric(32)
		dst := make([]float32, 32)
		rt.PushFaultScope(pe)
		defer rt.PopFaultScope(pe)
		pe.Get(dst, seg, 0, 0) // warm
		allocs := testing.AllocsPerRun(50, func() {
			pe.Get(dst, seg, 0, 0)
		})
		if allocs > 0 {
			t.Errorf("no-fault in-scope get allocates %v objects, want 0", allocs)
		}
	})
}

func maxRelDiff(x, y *tile.Matrix) float64 {
	worst := 0.0
	for i := range x.Data {
		diff := float64(x.Data[i] - y.Data[i])
		if diff < 0 {
			diff = -diff
		}
		scale := float64(x.Data[i])
		if scale < 0 {
			scale = -scale
		}
		if scale < 1 {
			scale = 1
		}
		if d := diff / scale; d > worst {
			worst = d
		}
	}
	return worst
}
