package chaos

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	rt "slicing/internal/runtime"
)

// Wrap decorates a backend so every world it creates is fault-injected
// under plan. The wrapped backend is a drop-in runtime.Backend; its name
// is the inner name suffixed with "+chaos".
func Wrap(b rt.Backend, plan *Plan) rt.Backend {
	return wrappedBackend{inner: b, plan: plan}
}

type wrappedBackend struct {
	inner rt.Backend
	plan  *Plan
}

func (b wrappedBackend) Name() string { return b.inner.Name() + "+chaos" }

func (b wrappedBackend) NewWorld(p int) rt.World {
	return WrapWorld(b.inner.NewWorld(p), b.plan)
}

// WrapWorld decorates one world with fault injection under plan. The
// returned world preserves the inner world's optional capabilities
// (TimedWorld, StreamTimer, FabricTimer) by selecting a wrapper flavour
// that forwards them, so harness code probing capabilities sees the same
// answers it would from the bare world. Use Of to reach the chaos state
// (fire log, injection counters) behind the returned value.
func WrapWorld(inner rt.World, plan *Plan) rt.World {
	p := inner.NumPE()
	w := &World{
		inner:    inner,
		plan:     plan,
		p:        p,
		scope:    make([]atomic.Int32, p),
		deadline: make([]atomic.Int64, p),
		seq:      make([]atomic.Int64, p*numClasses),
		crashed:  make([]atomic.Bool, p),
		capped:   make([]atomic.Int64, len(plan.Rules)*p),
		once:     make([]atomic.Bool, len(plan.Rules)),
	}
	_, timed := inner.(rt.TimedWorld)
	_, stream := inner.(rt.StreamTimer)
	var out rt.World
	switch {
	case timed && stream:
		out = streamWorld{timedWorld{w}}
	case timed:
		out = timedWorld{w}
	default:
		out = w
	}
	w.self = out
	return out
}

// Of returns the chaos state behind a world produced by Wrap/WrapWorld,
// ok=false for any other world.
func Of(w rt.World) (*World, bool) {
	switch v := w.(type) {
	case *World:
		return v, true
	case timedWorld:
		return v.base, true
	case streamWorld:
		return v.base, true
	}
	return nil, false
}

// World is the fault-injecting world decorator. All runtime.World methods
// delegate to the wrapped world; the one-sided primitives of the PEs it
// hands out pass through inject first.
type World struct {
	inner rt.World
	plan  *Plan
	// self is the capability-flavoured wrapper value actually returned to
	// callers; PE.World() must hand it back so identity checks (plan
	// caches, serving-layer operand validation) key on the chaos world.
	self rt.World
	p    int

	scope    []atomic.Int32 // per-rank fault-scope depth
	deadline []atomic.Int64 // per-rank op deadline, nanoseconds (0 = none)
	seq      []atomic.Int64 // per-(rank, class) op sequence counters
	crashed  []atomic.Bool  // per-rank sticky crash flags
	capped   []atomic.Int64 // per-(rule, rank) fire counts for MaxFires
	once     []atomic.Bool  // per-rule world-wide single-shot latch

	transient atomic.Int64
	delayed   atomic.Int64
	hung      atomic.Int64
	crashes   atomic.Int64
	degrades  atomic.Int64
	heals     atomic.Int64

	mu  sync.Mutex
	log []Fire
}

func (w *World) NumPE() int                        { return w.inner.NumPE() }
func (w *World) AllocSymmetric(n int) rt.SegmentID { return w.inner.AllocSymmetric(n) }
func (w *World) World() rt.World                   { return w.self }
func (w *World) SegmentLen(seg rt.SegmentID) int   { return w.inner.SegmentLen(seg) }
func (w *World) Stats() rt.Stats                   { return w.inner.Stats() }
func (w *World) ResetStats()                       { w.inner.ResetStats() }

func (w *World) SegmentStorage(seg rt.SegmentID, rank int) []float32 {
	return w.inner.SegmentStorage(seg, rank)
}

// Run spawns the inner world's PEs and hands the body fault-injecting
// wrappers around them.
func (w *World) Run(body func(pe rt.PE)) {
	w.inner.Run(func(inner rt.PE) {
		body(w.wrapPE(inner))
	})
}

// DegradeLink implements runtime.LinkDegrader: it forwards to the inner
// world's own degrade hook when it has one, falling back to the plan's
// Fabric. DegradeRail rules go through the same path.
func (w *World) DegradeLink(name string, factor float64) bool {
	if rt.DegradeLinkOf(w.inner, name, factor) {
		return true
	}
	if f := w.plan.Fabric; f != nil {
		for li := 0; li < f.NumLinks(); li++ {
			if f.LinkAt(li).Name == name {
				f.DegradeAt(li, factor)
				return true
			}
		}
	}
	return false
}

// Crashed reports whether a Crash rule has fired on rank.
func (w *World) Crashed(rank int) bool { return w.crashed[rank].Load() }

// RankFailed implements runtime.HealthReporter from the sticky crash
// flags, so membership views (runtime.Membership.Sync, DeadRanksOf) and
// the serving loop's failover path can poll liveness through the plain
// runtime.World interface.
func (w *World) RankFailed(rank int) bool { return w.crashed[rank].Load() }

// Revive clears rank's crash flag — the test-scriptable heal: the PE's
// NIC came back and its initiations work again. It reports whether the
// rank was crashed (false makes repeated revival idempotent). Reviving
// does not rewind rule state: a Crash rule that still matches the rank
// may crash it again, and MaxFires caps already consumed stay consumed.
func (w *World) Revive(rank int) bool {
	if w.crashed[rank].CompareAndSwap(true, false) {
		w.heals.Add(1)
		return true
	}
	return false
}

// Injected returns a snapshot of the per-kind injection counters.
func (w *World) Injected() Stats {
	return Stats{
		Transient: w.transient.Load(),
		Delayed:   w.delayed.Load(),
		Hung:      w.hung.Load(),
		Crashes:   w.crashes.Load(),
		Degrades:  w.degrades.Load(),
		Heals:     w.heals.Load(),
	}
}

// Fires returns the fault schedule so far: every fired rule occurrence,
// sorted (rule, rank, class, seq) so two runs of the same seeded workload
// can be compared for identity regardless of goroutine interleaving.
func (w *World) Fires() []Fire {
	w.mu.Lock()
	out := make([]Fire, len(w.log))
	copy(out, w.log)
	w.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Seq < b.Seq
	})
	return out
}

func (w *World) record(r *Rule, class OpClass, rank, seq int) {
	w.mu.Lock()
	w.log = append(w.log, Fire{Rule: r.Name, Kind: r.Kind, Class: class, Rank: rank, Seq: seq})
	w.mu.Unlock()
}

// inject is the interception point every one-sided primitive passes
// through. Outside a fault scope it is a single atomic load; inside one
// it draws the next (rank, class) sequence number and evaluates the rules
// in order — the first firing rule wins. Failing kinds unwind via
// runtime.Fail; surviving kinds return and the caller performs the op.
// The no-fire path allocates nothing.
func (w *World) inject(rank int, class OpClass, op string) {
	if w.scope[rank].Load() == 0 {
		return
	}
	if w.crashed[rank].Load() {
		rt.Fail(rt.ErrPEFailed, op, rank)
	}
	seq := int(w.seq[rank*numClasses+classIndex(class)].Add(1)) - 1
	for i := range w.plan.Rules {
		r := &w.plan.Rules[i]
		if !r.matches(class, rank) || !w.plan.Decide(i, rank, seq) {
			continue
		}
		// MaxFires accounting consumes cap slots at evaluation order, which
		// under concurrent ops of one class is not deterministic — capped
		// rules trade schedule reproducibility for boundedness (documented
		// in docs/RESILIENCE.md). Pure rate rules stay fully deterministic.
		if r.MaxFires > 0 && int(w.capped[i*w.p+rank].Add(1)) > r.MaxFires {
			continue
		}
		w.fire(i, r, class, rank, seq, op)
		return
	}
}

// fire applies one firing rule to the current op.
func (w *World) fire(idx int, r *Rule, class OpClass, rank, seq int, op string) {
	switch r.Kind {
	case Transient:
		w.record(r, class, rank, seq)
		w.transient.Add(1)
		rt.Fail(rt.ErrTransient, op, rank)
	case Delay:
		w.record(r, class, rank, seq)
		w.delayed.Add(1)
		time.Sleep(r.Delay)
	case Hang:
		w.record(r, class, rank, seq)
		w.hung.Add(1)
		if d := time.Duration(w.deadline[rank].Load()); d > 0 && d < r.Delay {
			// The op would outlive its deadline: model the backend noticing
			// at the deadline and failing the op rather than wedging the
			// caller for the full hang.
			time.Sleep(d)
			rt.Fail(rt.ErrOpTimeout, op, rank)
		}
		time.Sleep(r.Delay)
	case Crash:
		if w.crashed[rank].CompareAndSwap(false, true) {
			w.record(r, class, rank, seq)
			w.crashes.Add(1)
		}
		rt.Fail(rt.ErrPEFailed, op, rank)
	case DegradeRail:
		if w.once[idx].CompareAndSwap(false, true) && w.DegradeLink(r.Link, r.Factor) {
			w.record(r, class, rank, seq)
			w.degrades.Add(1)
		}
	case Heal:
		// Revive only records when Target was actually crashed, so the
		// logged schedule stays meaningful (one fire per revival) even
		// though the rule keeps deciding true on later ops.
		if w.Revive(r.Target) {
			w.record(r, class, rank, seq)
		}
	}
}

// base aliases World so the flavoured wrappers can embed it without the
// field name colliding with the World() method of the runtime contract.
type base = World

// timedWorld forwards the TimedWorld and FabricTimer capabilities of a
// timed inner world.
type timedWorld struct{ *base }

func (w timedWorld) PredictedSeconds() float64 { return w.inner.(rt.TimedWorld).PredictedSeconds() }
func (w timedWorld) ResetTime()                { w.inner.(rt.TimedWorld).ResetTime() }

func (w timedWorld) FabricLinkStats() []rt.LinkStats {
	if ft, ok := w.inner.(rt.FabricTimer); ok {
		return ft.FabricLinkStats()
	}
	return nil
}

// streamWorld additionally forwards StreamTimer for stream/event-timed
// inner worlds.
type streamWorld struct{ timedWorld }

func (w streamWorld) StreamStats() rt.StreamStats { return w.inner.(rt.StreamTimer).StreamStats() }

var (
	_ rt.World        = (*World)(nil)
	_ rt.LinkDegrader = (*World)(nil)
	_ rt.TimedWorld   = timedWorld{}
	_ rt.FabricTimer  = timedWorld{}
	_ rt.StreamTimer  = streamWorld{}
)

// pe is the fault-injecting PE decorator. Every one-sided primitive
// passes through inject before delegating; Barrier and allocation never
// do (they are the backbone recovery relies on).
type pe struct {
	inner rt.PE
	cw    *World
	rank  int
}

func (w *World) wrapPE(inner rt.PE) rt.PE {
	p := &pe{inner: inner, cw: w, rank: inner.Rank()}
	c, hasClock := inner.(rt.Clock)
	g, hasGemm := inner.(rt.GemmTimer)
	if hasClock && hasGemm {
		return &timedPE{pe: p, clock: c, gemm: g}
	}
	return p
}

func (p *pe) Rank() int                         { return p.rank }
func (p *pe) NumPE() int                        { return p.inner.NumPE() }
func (p *pe) World() rt.World                   { return p.cw.self }
func (p *pe) AllocSymmetric(n int) rt.SegmentID { return p.inner.AllocSymmetric(n) }
func (p *pe) Local(seg rt.SegmentID) []float32  { return p.inner.Local(seg) }
func (p *pe) Barrier()                          { p.inner.Barrier() }

// PushFaultScope implements runtime.FaultScoper.
func (p *pe) PushFaultScope() { p.cw.scope[p.rank].Add(1) }

// PopFaultScope implements runtime.FaultScoper.
func (p *pe) PopFaultScope() { p.cw.scope[p.rank].Add(-1) }

// SetOpDeadline implements runtime.OpDeadliner: it bounds how long an
// injected Hang may stall this rank's ops before they fail with
// ErrOpTimeout. Zero removes the bound.
func (p *pe) SetOpDeadline(d time.Duration) { p.cw.deadline[p.rank].Store(int64(d)) }

func (p *pe) Get(dst []float32, seg rt.SegmentID, remote, offset int) {
	p.cw.inject(p.rank, OpGet, "Get")
	p.inner.Get(dst, seg, remote, offset)
}

func (p *pe) Put(src []float32, seg rt.SegmentID, remote, offset int) {
	p.cw.inject(p.rank, OpPut, "Put")
	p.inner.Put(src, seg, remote, offset)
}

func (p *pe) AccumulateAdd(src []float32, seg rt.SegmentID, remote, offset int) {
	p.cw.inject(p.rank, OpAccum, "AccumulateAdd")
	p.inner.AccumulateAdd(src, seg, remote, offset)
}

func (p *pe) AccumulateAddGetPut(src []float32, seg rt.SegmentID, remote, offset int) {
	p.cw.inject(p.rank, OpAccum, "AccumulateAddGetPut")
	p.inner.AccumulateAddGetPut(src, seg, remote, offset)
}

func (p *pe) GetStrided(dst []float32, dstStride int, seg rt.SegmentID, remote, offset, srcStride, rows, cols int) {
	p.cw.inject(p.rank, OpGet, "GetStrided")
	p.inner.GetStrided(dst, dstStride, seg, remote, offset, srcStride, rows, cols)
}

func (p *pe) PutStrided(src []float32, srcStride int, seg rt.SegmentID, remote, offset, dstStride, rows, cols int) {
	p.cw.inject(p.rank, OpPut, "PutStrided")
	p.inner.PutStrided(src, srcStride, seg, remote, offset, dstStride, rows, cols)
}

func (p *pe) AccumulateAddStrided(src []float32, srcStride int, seg rt.SegmentID, remote, offset, dstStride, rows, cols int) {
	p.cw.inject(p.rank, OpAccum, "AccumulateAddStrided")
	p.inner.AccumulateAddStrided(src, srcStride, seg, remote, offset, dstStride, rows, cols)
}

func (p *pe) GetAsync(dst []float32, seg rt.SegmentID, remote, offset int) rt.Future {
	p.cw.inject(p.rank, OpGet, "GetAsync")
	return p.inner.GetAsync(dst, seg, remote, offset)
}

func (p *pe) GetStridedAsync(dst []float32, dstStride int, seg rt.SegmentID, remote, offset, srcStride, rows, cols int) rt.Future {
	p.cw.inject(p.rank, OpGet, "GetStridedAsync")
	return p.inner.GetStridedAsync(dst, dstStride, seg, remote, offset, srcStride, rows, cols)
}

func (p *pe) AccumulateAddAsync(src []float32, seg rt.SegmentID, remote, offset int) rt.Future {
	p.cw.inject(p.rank, OpAccum, "AccumulateAddAsync")
	return p.inner.AccumulateAddAsync(src, seg, remote, offset)
}

// timedPE additionally forwards the Clock and GemmTimer capabilities of a
// timed inner PE.
type timedPE struct {
	*pe
	clock rt.Clock
	gemm  rt.GemmTimer
}

func (p *timedPE) Now() float64           { return p.clock.Now() }
func (p *timedPE) Elapse(seconds float64) { p.clock.Elapse(seconds) }
func (p *timedPE) ElapseGemm(m, n, k int) { p.gemm.ElapseGemm(m, n, k) }

var (
	_ rt.PE          = (*pe)(nil)
	_ rt.FaultScoper = (*pe)(nil)
	_ rt.OpDeadliner = (*pe)(nil)
	_ rt.Clock       = (*timedPE)(nil)
	_ rt.GemmTimer   = (*timedPE)(nil)
)
