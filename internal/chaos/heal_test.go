package chaos

// Tests of the kill/heal machinery: the Heal rule kind, World.Revive,
// the HealthReporter view, and the deterministic rank picker behind the
// sweep's availability axis.

import (
	"errors"
	"reflect"
	"testing"

	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
)

// TestHealRevivesCrashedRank scripts a full kill/heal cycle: rank 1
// crashes on its first in-scope op, rank 0's third op fires the Heal
// rule (the prober noticing the NIC came back), and rank 1's next op
// succeeds. The health view must track both transitions.
func TestHealRevivesCrashedRank(t *testing.T) {
	plan := &Plan{Seed: 3, Rules: []Rule{
		{Name: "die", Kind: Crash, Ranks: []int{1}, Rate: 1, MaxFires: 1},
		{Name: "probe-heal", Kind: Heal, Target: 1, Ranks: []int{0}, Rate: 1, After: 2, MaxFires: 1},
	}}
	w := WrapWorld(shmem.NewWorld(2), plan)
	cw, ok := Of(w)
	if !ok {
		t.Fatal("Of failed on a wrapped world")
	}
	var dead, sticky, healed error
	w.Run(func(pe rt.PE) {
		seg := pe.AllocSymmetric(16)
		dst := make([]float32, 16)
		rt.PushFaultScope(pe)
		defer rt.PopFaultScope(pe)
		if pe.Rank() == 1 {
			dead = tryOp(func() { pe.Get(dst, seg, 0, 0) })
			sticky = tryOp(func() { pe.Get(dst, seg, 0, 0) })
		}
		pe.Barrier()
		if pe.Rank() == 0 {
			if !cw.RankFailed(1) {
				t.Error("health view missed the crash")
			}
			// Ops 0 and 1 warm past After; op 2 fires the heal.
			for i := 0; i < 3; i++ {
				if err := tryOp(func() { pe.Get(dst, seg, 1, 0) }); err != nil {
					t.Errorf("rank 0 op %d onto the dead rank's memory: %v", i, err)
				}
			}
		}
		pe.Barrier()
		if pe.Rank() == 1 {
			healed = tryOp(func() { pe.Get(dst, seg, 0, 0) })
		}
	})
	if !errors.Is(dead, rt.ErrPEFailed) {
		t.Fatalf("crash op error: %v", dead)
	}
	if !errors.Is(sticky, rt.ErrPEFailed) {
		t.Fatalf("crash was not sticky before the heal: %v", sticky)
	}
	if healed != nil {
		t.Fatalf("post-heal op still failing: %v", healed)
	}
	if cw.RankFailed(1) {
		t.Fatal("health view still reports rank 1 failed after the heal")
	}
	inj := cw.Injected()
	if inj.Crashes != 1 || inj.Heals != 1 {
		t.Fatalf("stats = %+v, want exactly one crash and one heal", inj)
	}
	foundHeal := false
	for _, f := range cw.Fires() {
		if f.Kind == Heal {
			if foundHeal {
				t.Fatal("heal fired twice despite MaxFires 1")
			}
			foundHeal = true
			if f.Rank != 0 {
				t.Fatalf("heal fired from rank %d, want the prober rank 0", f.Rank)
			}
		}
	}
	if !foundHeal {
		t.Fatal("no heal fire in the schedule log")
	}
}

// TestReviveIsIdempotent pins Revive's direct contract: reviving a
// healthy rank is a no-op that records nothing.
func TestReviveIsIdempotent(t *testing.T) {
	plan := &Plan{Seed: 1, Rules: []Rule{
		{Name: "die", Kind: Crash, Ranks: []int{0}, Rate: 1},
	}}
	w := WrapWorld(shmem.NewWorld(1), plan)
	cw, _ := Of(w)
	if cw.Revive(0) {
		t.Fatal("Revive on a healthy rank reported a revival")
	}
	w.Run(func(pe rt.PE) {
		seg := pe.AllocSymmetric(8)
		dst := make([]float32, 8)
		rt.PushFaultScope(pe)
		defer rt.PopFaultScope(pe)
		_ = tryOp(func() { pe.Get(dst, seg, 0, 0) })
	})
	if !cw.Crashed(0) {
		t.Fatal("rank 0 did not crash")
	}
	if !cw.Revive(0) {
		t.Fatal("Revive on a crashed rank reported nothing")
	}
	if cw.Revive(0) {
		t.Fatal("second Revive reported a revival")
	}
	if got := cw.Injected().Heals; got != 1 {
		t.Fatalf("Heals = %d, want 1", got)
	}
}

// TestPickRanksDeterministic pins the sweep's crash-grid picker: pure in
// its inputs, sorted, distinct, clamped, and salt-sensitive.
func TestPickRanksDeterministic(t *testing.T) {
	a := PickRanks(42, 7, 3, 8)
	b := PickRanks(42, 7, 3, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same inputs, different picks: %v vs %v", a, b)
	}
	if len(a) != 3 {
		t.Fatalf("picked %d ranks, want 3", len(a))
	}
	for i := range a {
		if a[i] < 0 || a[i] >= 8 {
			t.Fatalf("pick %d out of range: %v", i, a)
		}
		if i > 0 && a[i] <= a[i-1] {
			t.Fatalf("picks not sorted-distinct: %v", a)
		}
	}
	if got := PickRanks(42, 7, 12, 8); len(got) != 8 {
		t.Fatalf("k past p not clamped: %v", got)
	}
	if PickRanks(42, 7, 0, 8) != nil || PickRanks(42, 7, 3, 0) != nil {
		t.Fatal("degenerate inputs must return nil")
	}
	differs := false
	for salt := uint64(0); salt < 32 && !differs; salt++ {
		differs = !reflect.DeepEqual(PickRanks(42, salt, 3, 8), a)
	}
	if !differs {
		t.Fatal("32 salts all produced the same picks")
	}
}
