package chaos_test

// The recovery conformance suite: every backend, with one of its four
// ranks crashed mid-multiply by a seeded chaos plan, must still produce C
// within 1e-4 of the naive reference through MultiplyResilient — the
// survivors adopt exactly the dead rank's unfinished steps — with pooled
// buffers balanced and every rank (the crashed one included) returning a
// nil error and the identical recovery report.

import (
	"testing"

	"slicing/internal/chaos"
	"slicing/internal/distmat"
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/tile"
	"slicing/internal/universal"
)

// recoveryStormPlan crashes rank 2 mid-run (After skips its first ops, so
// the checkpoint has landed steps to preserve) on top of a light
// transient drizzle, proving retry and recovery compose.
func recoveryStormPlan(seed int64) *chaos.Plan {
	return &chaos.Plan{Seed: seed, Rules: []chaos.Rule{
		{Name: "get-drizzle", Ops: chaos.OpGet, Rate: 0.02},
		{Name: "die", Kind: chaos.Crash, Ranks: []int{2}, Rate: 1, After: 8, MaxFires: 1},
	}}
}

func TestRecoveryConformanceAcrossBackends(t *testing.T) {
	for _, b := range chaosBackends() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			const p, m, n, k = 4, 90, 70, 50
			pool := gpusim.NewPool()
			w := chaos.Wrap(b, recoveryStormPlan(99)).NewWorld(p)
			cw, ok := chaos.Of(w)
			if !ok {
				t.Fatal("chaos.Of failed on a wrapped world")
			}
			a := distmat.New(w, m, k, distmat.RowBlock{}, 1)
			bm := distmat.New(w, k, n, distmat.ColBlock{}, 1)
			c := distmat.New(w, m, n, distmat.Custom{TileRows: 13, TileCols: 11, ProcRows: 2, ProcCols: 2}, 1)
			cfg := universal.DefaultConfig()
			cfg.Pool = pool
			cfg.Retry.Attempts = stormRetryAttempts
			var got, want *tile.Matrix
			errs := make([]error, p)
			reports := make([]universal.RecoveryReport, p)
			w.Run(func(pe rt.PE) {
				a.FillRandom(pe, 31)
				bm.FillRandom(pe, 32)
				pe.Barrier()
				if pe.Rank() == 0 {
					want = tile.New(m, n)
					tile.GemmNaive(want, a.Gather(pe, 0), bm.Gather(pe, 0))
				}
				_, reports[pe.Rank()], errs[pe.Rank()] = universal.MultiplyResilient(pe, c, a, bm, cfg)
				pe.Barrier()
				if pe.Rank() == 0 {
					got = c.Gather(pe, 0)
				}
			})
			if !cw.Crashed(2) {
				t.Fatal("rank 2 never crashed — the test exercised nothing")
			}
			for r, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: resilient multiply failed: %v", r, err)
				}
			}
			// Every rank — the crashed one included — must compute the same
			// recovery story from the exchanged status.
			for r, rep := range reports {
				if !rep.Recovered {
					t.Errorf("rank %d: report not marked Recovered: %+v", r, rep)
				}
				if len(rep.FailedRanks) != 1 || rep.FailedRanks[0] != 2 {
					t.Errorf("rank %d: FailedRanks = %v, want [2]", r, rep.FailedRanks)
				}
				if rep.Rounds < 1 {
					t.Errorf("rank %d: Rounds = %d, want >= 1", r, rep.Rounds)
				}
				if rep.Rounds != reports[0].Rounds || rep.ReplayedOps != reports[0].ReplayedOps {
					t.Errorf("rank %d: report diverged: %+v vs %+v", r, rep, reports[0])
				}
			}
			if d := maxRelDiff(want, got); d > 1e-4 {
				t.Errorf("max rel diff %g vs GemmNaive after recovery", d)
			}
			if live := pool.Stats().Live; live != 0 {
				t.Errorf("%d pooled elements leaked across the recovery", live)
			}
		})
	}
}

// TestRecoveryCleanRunNoOverhead pins that a fault-free resilient
// multiply reports no recovery and matches the reference: the checkpoint
// and status exchange are overhead, never a behaviour change.
func TestRecoveryCleanRunNoOverhead(t *testing.T) {
	plan := &chaos.Plan{Seed: 7} // no rules: nothing ever fires
	const p, m, n, k = 4, 90, 70, 50
	pool := gpusim.NewPool()
	w := chaos.Wrap(chaosBackends()[0], plan).NewWorld(p)
	a := distmat.New(w, m, k, distmat.RowBlock{}, 1)
	bm := distmat.New(w, k, n, distmat.ColBlock{}, 1)
	c := distmat.New(w, m, n, distmat.RowBlock{}, 1)
	cfg := universal.DefaultConfig()
	cfg.Pool = pool
	var got, want *tile.Matrix
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 41)
		bm.FillRandom(pe, 42)
		pe.Barrier()
		if pe.Rank() == 0 {
			want = tile.New(m, n)
			tile.GemmNaive(want, a.Gather(pe, 0), bm.Gather(pe, 0))
		}
		_, rep, err := universal.MultiplyResilient(pe, c, a, bm, cfg)
		if err != nil {
			t.Errorf("rank %d: %v", pe.Rank(), err)
		}
		if rep.Recovered || rep.Rounds != 0 || len(rep.FailedRanks) != 0 {
			t.Errorf("rank %d: clean run reported recovery: %+v", pe.Rank(), rep)
		}
		pe.Barrier()
		if pe.Rank() == 0 {
			got = c.Gather(pe, 0)
		}
	})
	if d := maxRelDiff(want, got); d > 1e-4 {
		t.Errorf("max rel diff %g vs GemmNaive on a clean resilient run", d)
	}
	if live := pool.Stats().Live; live != 0 {
		t.Errorf("%d pooled elements leaked", live)
	}
}
