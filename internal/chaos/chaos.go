// Package chaos is the deterministic fault-injection layer (PR 8,
// docs/RESILIENCE.md): a seeded Plan of rate- and target-scoped Rules
// wrapped around any runtime.Backend or runtime.World via a decorator
// that intercepts every one-sided operation and — with per-rule, per-op
// probability — fails it with the runtime's typed error taxonomy,
// delays it, hangs it into the per-op deadline, crashes the whole PE,
// or downtrains a fabric rail mid-run.
//
// Determinism. Fire decisions are a pure hash of (seed, rule, rank,
// op-class sequence number) — splitmix64 over the tuple — with the
// sequence numbers drawn from per-(rank, class) atomic counters. No
// shared PRNG state is consumed, so goroutine interleaving cannot change
// WHICH sequence numbers fault: the same seed over the same workload
// reproduces the identical fault schedule (the set of fired
// (rule, rank, class, seq) tuples), which is what the reproducibility
// acceptance test pins. When ops of one class are issued concurrently
// (accumulates from the worker crew), the mapping from sequence number
// to logical operation can vary between runs; the schedule itself cannot.
//
// Scope. Faults are raised only inside a fault scope
// (runtime.FaultScoper): the retrying executor brackets its recoverable
// region, so collectives that cannot tolerate a mid-call unwind (reduce,
// broadcast, zeroing) and the barrier backbone never observe injected
// faults. A crashed PE keeps participating in barriers — exactly like a
// GPU whose NIC died but whose host process still reaches the collective
// — so a crash surfaces as an error from the executor, not a wedged
// world.
package chaos

import (
	"fmt"
	"sort"
	"time"

	"slicing/internal/fabric"
)

// OpClass is a bitmask of one-sided operation classes a rule applies to.
type OpClass uint8

const (
	// OpGet covers Get, GetStrided, GetAsync, GetStridedAsync.
	OpGet OpClass = 1 << iota
	// OpPut covers Put and PutStrided.
	OpPut
	// OpAccum covers AccumulateAdd, AccumulateAddGetPut,
	// AccumulateAddStrided, AccumulateAddAsync.
	OpAccum

	// OpAll matches every interceptable class. Barriers, Local views, and
	// allocation are never fault-injected: they are the synchronization
	// backbone recovery itself relies on.
	OpAll = OpGet | OpPut | OpAccum
)

// numClasses is the number of distinct sequence-counter streams per rank.
const numClasses = 3

func classIndex(c OpClass) int {
	switch c {
	case OpGet:
		return 0
	case OpPut:
		return 1
	default:
		return 2
	}
}

// String names the class for logs.
func (c OpClass) String() string {
	switch c {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpAccum:
		return "accum"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Kind selects what a firing rule does to the operation.
type Kind uint8

const (
	// Transient fails the op with runtime.ErrTransient before any data
	// moves; a retry reissues the full operation.
	Transient Kind = iota
	// Delay sleeps Rule.Delay of real time, then performs the op — a slow
	// rail, not a failure.
	Delay
	// Hang sleeps Rule.Delay, but if the backend's per-op deadline
	// (runtime.SetOpDeadline) is shorter, sleeps only the deadline and
	// fails the op with runtime.ErrOpTimeout. With no deadline set the
	// full Delay elapses and the op then proceeds (a very slow op, the
	// failure mode deadlines exist for).
	Hang
	// Crash fails this op with runtime.ErrPEFailed and marks the rank
	// crashed: every later intercepted op on the rank fails the same way.
	// Fires at most once per rank regardless of MaxFires.
	Crash
	// DegradeRail downtrains the fabric link named Rule.Link by
	// Rule.Factor through the mid-run-safe degrade hook, then performs
	// the op normally. Fires at most once per world regardless of rank.
	DegradeRail
	// Heal revives the crashed rank named Rule.Target (World.Revive),
	// then performs the op normally. Because a crashed rank's in-scope
	// ops fail before drawing sequence numbers, a Heal rule necessarily
	// fires from ANOTHER rank's op stream — the health prober noticing
	// the NIC came back, not the dead rank healing itself. It records a
	// fire only when a revival actually happens (Target was crashed), so
	// with Rate 1 the rule is an idempotent "revive Target once N ops
	// have passed". A revived rank may crash again if a Crash rule still
	// matches it; bound kill/heal cycles with MaxFires on the Crash rule.
	Heal
)

// String names the kind for logs.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Delay:
		return "delay"
	case Hang:
		return "hang"
	case Crash:
		return "crash"
	case DegradeRail:
		return "degrade-rail"
	case Heal:
		return "heal"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Rule is one fault-injection rule. The zero value of every scoping
// field means "unscoped": all classes, all ranks, from the first op.
type Rule struct {
	// Name labels the rule in fire logs.
	Name string
	// Ops is the op-class mask the rule applies to (0 = OpAll).
	Ops OpClass
	// Ranks scopes the rule to specific initiating ranks (nil = all).
	Ranks []int
	// Rate is the per-op firing probability in [0, 1]. 1 fires on every
	// matching op past After.
	Rate float64
	// After skips the first After matching ops per (rank, class), letting
	// a run warm up before the storm starts — and positioning
	// deterministic single-shot rules (Crash, DegradeRail with Rate 1)
	// at an exact op index.
	After int
	// MaxFires caps the rule's total fires per rank (0 = unlimited).
	MaxFires int
	// Kind selects the effect; Transient is the zero value.
	Kind Kind
	// Delay is the Delay/Hang duration.
	Delay time.Duration
	// Link and Factor configure DegradeRail: the fabric link name and the
	// bandwidth multiplier in (0, 1].
	Link   string
	Factor float64
	// Target is the rank a Heal rule revives.
	Target int
}

// matches reports whether the rule applies to an op of class c initiated
// by rank.
func (r *Rule) matches(c OpClass, rank int) bool {
	if r.Ops != 0 && r.Ops&c == 0 {
		return false
	}
	if len(r.Ranks) == 0 {
		return true
	}
	for _, rk := range r.Ranks {
		if rk == rank {
			return true
		}
	}
	return false
}

// Plan is an immutable fault-injection configuration: a seed plus rules.
// One Plan may wrap many worlds; each world keeps its own counters, so
// every wrapped world replays the same schedule independently.
type Plan struct {
	// Seed drives every fire decision. The same seed over the same
	// workload reproduces the identical fault schedule.
	Seed int64
	// Rules are evaluated in order for every intercepted op; the first
	// firing rule wins for that op.
	Rules []Rule
	// Fabric, when non-nil, is the DegradeRail target for worlds that do
	// not implement runtime.LinkDegrader themselves (e.g. a chaos-wrapped
	// shmem world used to exercise serving-layer behaviour while the
	// fabric is only priced elsewhere). Worlds with the capability take
	// precedence.
	Fabric *fabric.Fabric
}

// splitmix64 is the avalanche permutation behind the fire decisions: a
// tiny, stateless, high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fireHash01 maps (seed, rule, rank, seq) to a uniform float64 in [0, 1).
func fireHash01(seed int64, rule, rank int, seq uint64) float64 {
	h := splitmix64(uint64(seed))
	h = splitmix64(h ^ uint64(rule)<<32 ^ uint64(uint32(rank)))
	h = splitmix64(h ^ seq)
	return float64(h>>11) / float64(1<<53)
}

// Decide reports whether rule ruleIdx fires for the seq-th matching op of
// (rank, class-counter). It is a pure function — the deterministic core
// the reproducibility tests pin directly.
func (p *Plan) Decide(ruleIdx, rank int, seq int) bool {
	r := &p.Rules[ruleIdx]
	if seq < r.After {
		return false
	}
	if r.Rate >= 1 {
		return true
	}
	if r.Rate <= 0 {
		return false
	}
	return fireHash01(p.Seed, ruleIdx, rank, uint64(seq)) < r.Rate
}

// Fire is one fired rule occurrence, the unit of the fault schedule.
type Fire struct {
	Rule  string
	Kind  Kind
	Class OpClass
	Rank  int
	// Seq is the per-(rank, class) op sequence number that faulted.
	Seq int
}

// String formats a fire for logs.
func (f Fire) String() string {
	return fmt.Sprintf("%s/%s rank %d %s#%d", f.Rule, f.Kind, f.Rank, f.Class, f.Seq)
}

// Stats counts injected effects per kind across a world's lifetime.
type Stats struct {
	Transient, Delayed, Hung, Crashes, Degrades, Heals int64
}

// PickRanks deterministically selects k distinct ranks out of p using the
// same splitmix64 mixer as the fire decisions: each rank is scored by
// hashing (seed, salt, rank) and the k lowest scores win (ties broken by
// rank). The result is sorted ascending — ready for
// universal.Config.Exclude — and depends only on the inputs, so seeded
// crash grids (the sweep's availability axis) reproduce exactly. k is
// clamped to [0, p].
func PickRanks(seed int64, salt uint64, k, p int) []int {
	if k <= 0 || p <= 0 {
		return nil
	}
	if k > p {
		k = p
	}
	base := splitmix64(uint64(seed) ^ splitmix64(salt))
	picked := make([]int, 0, k)
	for len(picked) < k {
		best, bestScore := -1, uint64(0)
		for r := 0; r < p; r++ {
			taken := false
			for _, pr := range picked {
				if pr == r {
					taken = true
					break
				}
			}
			if taken {
				continue
			}
			score := splitmix64(base ^ uint64(r))
			if best < 0 || score < bestScore {
				best, bestScore = r, score
			}
		}
		picked = append(picked, best)
	}
	sort.Ints(picked)
	return picked
}
