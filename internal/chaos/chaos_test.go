package chaos

// White-box tests of the injection machinery: the pure fire-decision
// core, scope gating, per-kind effects, and schedule reproducibility.
// The cross-backend correctness matrix lives in conformance_test.go.

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"slicing/internal/fabric"
	"slicing/internal/gpubackend"
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/simbackend"
	"slicing/internal/simnet"
)

// tryOp converts an injected fault panic into an error, the same
// conversion the retrying executor performs at its op boundary.
func tryOp(f func()) (err error) {
	defer rt.CatchFault(&err)
	f()
	return nil
}

func TestDecideIsPureAndSeeded(t *testing.T) {
	p := &Plan{Seed: 42, Rules: []Rule{
		{Name: "always", Rate: 1},
		{Name: "never", Rate: 0},
		{Name: "warm", Rate: 1, After: 10},
		{Name: "coin", Rate: 0.5},
	}}
	for seq := 0; seq < 100; seq++ {
		if !p.Decide(0, 3, seq) {
			t.Fatalf("rate-1 rule did not fire at seq %d", seq)
		}
		if p.Decide(1, 3, seq) {
			t.Fatalf("rate-0 rule fired at seq %d", seq)
		}
		if got, want := p.Decide(2, 3, seq), seq >= 10; got != want {
			t.Fatalf("After=10 rule at seq %d: fired=%v", seq, got)
		}
		// Purity: the decision must not depend on evaluation history.
		if p.Decide(3, 3, seq) != p.Decide(3, 3, seq) {
			t.Fatalf("Decide is not pure at seq %d", seq)
		}
	}
	// A different seed must produce a different schedule somewhere.
	q := &Plan{Seed: 43, Rules: p.Rules}
	same := true
	for seq := 0; seq < 1000 && same; seq++ {
		same = p.Decide(3, 0, seq) == q.Decide(3, 0, seq)
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical coin-flip schedules over 1000 ops")
	}
}

func TestDecideRateIsCalibrated(t *testing.T) {
	p := &Plan{Seed: 7, Rules: []Rule{{Name: "p10", Rate: 0.1}}}
	const n = 20000
	fires := 0
	for seq := 0; seq < n; seq++ {
		if p.Decide(0, 0, seq) {
			fires++
		}
	}
	got := float64(fires) / n
	if math.Abs(got-0.1) > 0.01 {
		t.Fatalf("rate-0.1 rule fired at %.4f over %d ops", got, n)
	}
}

func TestRuleMatchScoping(t *testing.T) {
	get := Rule{Ops: OpGet}
	if !get.matches(OpGet, 0) || get.matches(OpPut, 0) || get.matches(OpAccum, 0) {
		t.Fatal("OpGet mask matched the wrong classes")
	}
	all := Rule{} // zero Ops = all classes
	if !all.matches(OpGet, 0) || !all.matches(OpPut, 0) || !all.matches(OpAccum, 0) {
		t.Fatal("zero-value Ops must match every class")
	}
	ranked := Rule{Ranks: []int{2}}
	if ranked.matches(OpGet, 0) || !ranked.matches(OpGet, 2) {
		t.Fatal("rank scoping failed")
	}
}

// runOps drives n in-scope Gets on rank 0 of a fresh single-PE shmem
// world wrapped under plan, returning the chaos state and the per-op
// errors.
func runOps(plan *Plan, n int) (*World, []error) {
	w := WrapWorld(shmem.NewWorld(1), plan)
	cw, _ := Of(w)
	errs := make([]error, 0, n)
	w.Run(func(pe rt.PE) {
		seg := pe.AllocSymmetric(16)
		dst := make([]float32, 16)
		rt.PushFaultScope(pe)
		defer rt.PopFaultScope(pe)
		for i := 0; i < n; i++ {
			errs = append(errs, tryOp(func() { pe.Get(dst, seg, 0, 0) }))
		}
	})
	return cw, errs
}

// Faults must only be raised inside a fault scope: the same rate-1 rule
// is inert before Push and after Pop.
func TestScopeGatesInjection(t *testing.T) {
	plan := &Plan{Seed: 1, Rules: []Rule{{Name: "storm", Rate: 1}}}
	w := WrapWorld(shmem.NewWorld(1), plan)
	cw, ok := Of(w)
	if !ok {
		t.Fatal("Of failed on a wrapped world")
	}
	w.Run(func(pe rt.PE) {
		seg := pe.AllocSymmetric(8)
		dst := make([]float32, 8)
		if err := tryOp(func() { pe.Get(dst, seg, 0, 0) }); err != nil {
			t.Errorf("fault outside any scope: %v", err)
		}
		rt.PushFaultScope(pe)
		if err := tryOp(func() { pe.Get(dst, seg, 0, 0) }); !rt.IsTransient(err) {
			t.Errorf("in-scope op under a rate-1 transient rule: %v", err)
		}
		rt.PopFaultScope(pe)
		if err := tryOp(func() { pe.Get(dst, seg, 0, 0) }); err != nil {
			t.Errorf("fault after scope popped: %v", err)
		}
		// Barriers are never injected, scope or not.
		rt.PushFaultScope(pe)
		pe.Barrier()
		rt.PopFaultScope(pe)
	})
	if got := cw.Injected().Transient; got != 1 {
		t.Fatalf("injected %d transients, want exactly 1 (the in-scope op)", got)
	}
}

func TestMaxFiresCapsARule(t *testing.T) {
	plan := &Plan{Seed: 1, Rules: []Rule{{Name: "capped", Rate: 1, MaxFires: 2}}}
	cw, errs := runOps(plan, 5)
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	if failed != 2 || cw.Injected().Transient != 2 {
		t.Fatalf("MaxFires=2 rule failed %d ops, injected %d", failed, cw.Injected().Transient)
	}
}

func TestCrashIsSticky(t *testing.T) {
	plan := &Plan{Seed: 1, Rules: []Rule{{Name: "die", Kind: Crash, Rate: 1, After: 1}}}
	cw, errs := runOps(plan, 4)
	if errs[0] != nil {
		t.Fatalf("op before After faulted: %v", errs[0])
	}
	for i, err := range errs[1:] {
		if !errors.Is(err, rt.ErrPEFailed) || !rt.IsFatal(err) {
			t.Fatalf("post-crash op %d: %v", i+1, err)
		}
	}
	if !cw.Crashed(0) {
		t.Fatal("Crashed(0) false after a crash fired")
	}
	if cw.Injected().Crashes != 1 {
		t.Fatalf("crash recorded %d times, want once per rank", cw.Injected().Crashes)
	}
	// Post-crash ops fail before drawing a sequence number: the schedule
	// up to the crash stays comparable across runs.
	if got := cw.seq[0].Load(); got != 2 {
		t.Fatalf("crashed rank consumed %d sequence numbers, want 2", got)
	}
}

func TestHangTruncatesAtOpDeadline(t *testing.T) {
	plan := &Plan{Seed: 1, Rules: []Rule{{Name: "wedge", Kind: Hang, Rate: 1, Delay: 10 * time.Second}}}
	w := WrapWorld(shmem.NewWorld(1), plan)
	w.Run(func(pe rt.PE) {
		seg := pe.AllocSymmetric(8)
		dst := make([]float32, 8)
		rt.SetOpDeadline(pe, time.Millisecond)
		rt.PushFaultScope(pe)
		defer rt.PopFaultScope(pe)
		start := time.Now()
		err := tryOp(func() { pe.Get(dst, seg, 0, 0) })
		if !errors.Is(err, rt.ErrOpTimeout) || !rt.IsFatal(err) {
			t.Errorf("hung op under a 1ms deadline: %v", err)
		}
		if e := time.Since(start); e > time.Second {
			t.Errorf("deadline did not truncate the hang: took %v", e)
		}
	})
}

func TestDelayAndShortHangProceed(t *testing.T) {
	plan := &Plan{Seed: 1, Rules: []Rule{
		{Name: "slow", Kind: Delay, Ops: OpGet, Rate: 1, Delay: time.Millisecond, MaxFires: 1},
		{Name: "stall", Kind: Hang, Ops: OpPut, Rate: 1, Delay: time.Millisecond, MaxFires: 1},
	}}
	w := WrapWorld(shmem.NewWorld(1), plan)
	cw, _ := Of(w)
	w.Run(func(pe rt.PE) {
		seg := pe.AllocSymmetric(4)
		rt.SetOpDeadline(pe, time.Minute) // longer than the hang: op proceeds
		rt.PushFaultScope(pe)
		defer rt.PopFaultScope(pe)
		if err := tryOp(func() { pe.Put([]float32{5}, seg, 0, 0) }); err != nil {
			t.Errorf("hung-then-proceeding put: %v", err)
		}
		dst := make([]float32, 1)
		if err := tryOp(func() { pe.Get(dst, seg, 0, 0) }); err != nil {
			t.Errorf("delayed get: %v", err)
		}
		if dst[0] != 5 {
			t.Errorf("delayed get moved no data: got %g", dst[0])
		}
	})
	st := cw.Injected()
	if st.Delayed != 1 || st.Hung != 1 {
		t.Fatalf("injected %+v, want one delay and one hang", st)
	}
}

// A DegradeRail rule fires once per world no matter how many ops match,
// and goes through the race-safe fabric.DegradeAt path.
func TestDegradeRailFiresOnce(t *testing.T) {
	f := fabric.SingleSwitch(2, 100e9, 1e12, 1e-6, "test")
	li := f.LinkID("pe1.up")
	before := f.LinkBandwidth(li)
	plan := &Plan{
		Seed:   1,
		Rules:  []Rule{{Name: "rail", Kind: DegradeRail, Rate: 1, Link: "pe1.up", Factor: 0.25}},
		Fabric: f,
	}
	cw, errs := runOps(plan, 6)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("degrade-rail failed op %d: %v", i, err)
		}
	}
	if got := cw.Injected().Degrades; got != 1 {
		t.Fatalf("degraded %d times over 6 matching ops, want once", got)
	}
	if got, want := f.LinkBandwidth(li), before*0.25; got != want {
		t.Fatalf("link bandwidth %g after degrade, want %g", got, want)
	}
}

// The fault schedule must be identical across two runs of the same
// seeded workload, and Fires must come back sorted.
func TestFireScheduleReproducible(t *testing.T) {
	plan := &Plan{Seed: 99, Rules: []Rule{
		{Name: "gets", Ops: OpGet, Rate: 0.3},
		{Name: "puts", Ops: OpPut, Rate: 0.2},
	}}
	run := func() []Fire {
		w := WrapWorld(shmem.NewWorld(2), plan)
		cw, _ := Of(w)
		w.Run(func(pe rt.PE) {
			seg := pe.AllocSymmetric(8)
			dst := make([]float32, 8)
			rt.PushFaultScope(pe)
			defer rt.PopFaultScope(pe)
			// Both ops target the issuing rank's own slot: injection only
			// keys on the initiator, and self-targeting keeps the two
			// unsynchronized ranks off each other's memory.
			for i := 0; i < 50; i++ {
				tryOp(func() { pe.Get(dst, seg, pe.Rank(), 0) })
				tryOp(func() { pe.Put(dst, seg, pe.Rank(), 0) })
			}
		})
		return cw.Fires()
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("storm never fired")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("same seed produced different schedules:\n%v\nvs\n%v", first, second)
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.Rule > b.Rule || (a.Rule == b.Rule && a.Rank > b.Rank) {
			t.Fatalf("Fires not sorted at %d: %v before %v", i, a, b)
		}
	}
}

// Wrapping must preserve the inner world's optional capabilities — and
// not invent them on worlds that lack them.
func TestWrapPreservesCapabilities(t *testing.T) {
	plan := &Plan{Seed: 1}
	dev := gpusim.PresetPVCDevice()
	topo := simnet.NewUniform(4, 100e9, 1e12, 1e-6, "caps")

	plain := WrapWorld(shmem.NewWorld(4), plan)
	if _, ok := plain.(rt.TimedWorld); ok {
		t.Fatal("wrapped shmem world claims TimedWorld")
	}
	timed := WrapWorld(simbackend.New(topo, dev).NewWorld(4), plan)
	if _, ok := timed.(rt.TimedWorld); !ok {
		t.Fatal("wrapped simbackend world lost TimedWorld")
	}
	if _, ok := timed.(rt.StreamTimer); ok {
		t.Fatal("wrapped simbackend world claims StreamTimer")
	}
	stream := WrapWorld(gpubackend.New(topo, dev).NewWorld(4), plan)
	if _, ok := stream.(rt.TimedWorld); !ok {
		t.Fatal("wrapped gpubackend world lost TimedWorld")
	}
	if _, ok := stream.(rt.StreamTimer); !ok {
		t.Fatal("wrapped gpubackend world lost StreamTimer")
	}
	for _, w := range []rt.World{plain, timed, stream} {
		cw, ok := Of(w)
		if !ok || cw == nil {
			t.Fatalf("Of failed for %T", w)
		}
		// PE.World must return the flavoured wrapper, not the bare inner
		// world: plan caches and serving-layer operand checks key on it.
		w.Run(func(pe rt.PE) {
			if pe.Rank() == 0 && pe.World() != w {
				t.Errorf("%T: pe.World() is not the wrapped world", w)
			}
		})
	}
	if got := Wrap(shmem.Backend{}, plan).Name(); got != "shmem+chaos" {
		t.Fatalf("wrapped backend name %q", got)
	}
}
