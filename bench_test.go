// Benchmarks regenerating the paper's evaluation. One benchmark per
// table/figure (see DESIGN.md's experiment index):
//
//	E2  BenchmarkTable2Systems        Table 2 system models
//	E4  BenchmarkFigure2MLP1          Figure 2 left  (PVC, MLP-1)
//	E5  BenchmarkFigure2MLP2          Figure 2 right (PVC, MLP-2)
//	E6  BenchmarkFigure3MLP1          Figure 3 left  (H100, MLP-1, +COSMA)
//	E7  BenchmarkFigure3MLP2          Figure 3 right (H100, MLP-2, +COSMA)
//	E8  BenchmarkScheduleAblation     direct vs lowered IR schedules
//	E9  BenchmarkAccumulateVsGet      accumulate ~0.8x of get bandwidth
//	E10 BenchmarkReplicationSweep     the §2.1 replication sliding scale
//
// Each figure benchmark reports the headline percent-of-peak values as
// custom metrics, so `go test -bench=.` prints the series the paper plots.
package slicing_test

import (
	"fmt"
	"math/rand"
	"testing"

	"slicing/internal/bench"
	"slicing/internal/costmodel"
	"slicing/internal/distmat"
	"slicing/internal/gpusim"
	"slicing/internal/ir"
	rt "slicing/internal/runtime"
	"slicing/internal/shmem"
	"slicing/internal/tile"
	"slicing/internal/universal"
)

// quickOpts keeps per-iteration sweep cost manageable while preserving the
// figures' qualitative shape. Run cmd/mlp_experiments for the full sweep.
func quickOpts() bench.Options {
	return bench.Options{
		Replications: []int{1, 2, 4},
		Batches:      []int{1024, 8192},
	}
}

func benchFigure(b *testing.B, sys universal.SimSystem, layer bench.Layer, withCOSMA bool) {
	b.ReportAllocs()
	var fig bench.Figure
	for i := 0; i < b.N; i++ {
		fig = bench.RunFigure(sys, layer, withCOSMA, quickOpts())
	}
	last := len(fig.Series[0].Points) - 1
	for _, s := range fig.Series {
		b.ReportMetric(s.Points[last].PercentOfPeak, pctMetric(s.Name))
	}
	// Absolute units for the figure's headline configuration: modeled
	// aggregate GFLOP/s and one-sided traffic MB/s (trajectory metrics for
	// BENCH_PR*.json regression tracking).
	thr := bench.PointThroughput(layer, fig.BestUAPoint())
	b.ReportMetric(thr.GFlops, "model_GFLOPs")
	b.ReportMetric(thr.MBs, "model_MB/s")
}

func pctMetric(series string) string {
	out := make([]rune, 0, len(series))
	for _, r := range series {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		}
	}
	return "pct_" + string(out)
}

// E2: Table 2 — the system models themselves (topology + device lookups).
func BenchmarkTable2Systems(b *testing.B) {
	b.ReportAllocs()
	pvc := universal.PVCSystem()
	h100 := universal.H100System()
	b.ReportMetric(pvc.Dev.PeakFlops/1e12, "PVC_TFLOPs")
	b.ReportMetric(h100.Dev.PeakFlops/1e12, "H100_TFLOPs")
	b.ReportMetric(pvc.Topo.Bandwidth(0, 4)/1e9, "PVC_link_GBs")
	b.ReportMetric(h100.Topo.Bandwidth(0, 1)/1e9, "H100_link_GBs")
	for i := 0; i < b.N; i++ {
		_ = pvc.Dev.GemmTime(4096, 4096, 4096)
		_ = pvc.Topo.Bandwidth(0, i%12)
	}
}

// E4: Figure 2 left — 12xPVC, MLP-1.
func BenchmarkFigure2MLP1(b *testing.B) { benchFigure(b, universal.PVCSystem(), bench.MLP1, false) }

// E5: Figure 2 right — 12xPVC, MLP-2.
func BenchmarkFigure2MLP2(b *testing.B) { benchFigure(b, universal.PVCSystem(), bench.MLP2, false) }

// E6: Figure 3 left — 8xH100, MLP-1, with the COSMA baseline.
func BenchmarkFigure3MLP1(b *testing.B) { benchFigure(b, universal.H100System(), bench.MLP1, true) }

// E7: Figure 3 right — 8xH100, MLP-2, with the COSMA baseline.
func BenchmarkFigure3MLP2(b *testing.B) { benchFigure(b, universal.H100System(), bench.MLP2, true) }

// E8: schedule ablation — direct execution versus greedy / cost-greedy
// lowered IR, on a misaligned problem where scheduling has the most room.
func BenchmarkScheduleAblation(b *testing.B) {
	b.ReportAllocs()
	sys := universal.H100System()
	md := costmodel.New(sys.Topo, sys.Dev)
	mk := func() universal.Problem {
		w := shmem.NewWorld(8)
		a := distmat.New(w, 2048, 2048, distmat.Custom{TileRows: 300, TileCols: 700, ProcRows: 2, ProcCols: 4}, 1)
		bm := distmat.New(w, 2048, 2048, distmat.ColBlock{}, 1)
		c := distmat.New(w, 2048, 2048, distmat.Block2D{}, 1)
		return universal.NewProblem(c, a, bm)
	}
	build := func(prob universal.Problem, gen func(universal.Plan) ir.Program) []ir.Program {
		progs := make([]ir.Program, 8)
		for rank := 0; rank < 8; rank++ {
			progs[rank] = gen(universal.BuildPlan(rank, prob, universal.StationaryC, universal.DefaultCacheTiles))
		}
		return progs
	}
	var direct, greedy, costG universal.SimResult
	for i := 0; i < b.N; i++ {
		prob := mk()
		direct = ir.Simulate(prob, build(prob, func(pl universal.Plan) ir.Program { return ir.Direct(pl, 2) }), sys)
		greedy = ir.Simulate(prob, build(prob, func(pl universal.Plan) ir.Program { return ir.Greedy(pl, ir.DefaultLimits()) }), sys)
		costG = ir.Simulate(prob, build(prob, func(pl universal.Plan) ir.Program { return ir.CostGreedy(md, pl, ir.DefaultLimits()) }), sys)
	}
	b.ReportMetric(direct.Makespan*1e3, "direct_ms")
	b.ReportMetric(greedy.Makespan*1e3, "greedy_ms")
	b.ReportMetric(costG.Makespan*1e3, "costgreedy_ms")
}

// E9: the accumulate kernel achieves a fraction of copy bandwidth. The
// real-execution half measures our PGAS accumulate against get on the same
// volume; the model half reports the 0.8 factor built into the device
// presets (§5.1).
func BenchmarkAccumulateVsGet(b *testing.B) {
	b.ReportAllocs()
	const elems = 1 << 20
	w := shmem.NewWorld(2)
	seg := w.AllocSymmetric(elems)
	buf := make([]float32, elems)
	b.SetBytes(elems * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(pe rt.PE) {
			if pe.Rank() == 0 {
				pe.Get(buf, seg, 1, 0)
				pe.AccumulateAdd(buf, seg, 1, 0)
			}
		})
	}
	b.StopTimer()
	dev := gpusim.PresetPVCDevice()
	b.ReportMetric(dev.AccumBWFactor, "model_accum_factor")
}

// E10: the replication sliding scale — simulated percent of peak for each
// factor on a fixed MLP-2-style problem (PVC preset).
func BenchmarkReplicationSweep(b *testing.B) {
	b.ReportAllocs()
	sys := universal.PVCSystem()
	var last float64
	for i := 0; i < b.N; i++ {
		for _, c := range []int{1, 2, 3, 4, 6} {
			w := shmem.NewWorld(12)
			a := distmat.New(w, 2048, 49152, distmat.Block2D{}, c)
			bm := distmat.New(w, 49152, 12288, distmat.Block2D{}, c)
			cm := distmat.New(w, 2048, 12288, distmat.Block2D{}, c)
			cfg := universal.DefaultConfig()
			cfg.Stationary = universal.StationaryC
			res := universal.SimulateMultiply(universal.NewProblem(cm, a, bm), cfg, sys)
			if i == 0 {
				b.ReportMetric(res.PercentOfPeak, fmt.Sprintf("pct_c%d", c))
			}
			last = res.PercentOfPeak
		}
	}
	_ = last
}

// Real-execution throughput of the universal algorithm on this machine
// (not a paper figure; a library-quality sanity benchmark).
func BenchmarkUniversalRealExecution(b *testing.B) {
	b.ReportAllocs()
	const p, m, n, k = 4, 256, 256, 256
	w := shmem.NewWorld(p)
	a := distmat.New(w, m, k, distmat.RowBlock{}, 1)
	bm := distmat.New(w, k, n, distmat.ColBlock{}, 1)
	c := distmat.New(w, m, n, distmat.Block2D{}, 1)
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 1)
		bm.FillRandom(pe, 2)
	})
	cfg := universal.DefaultConfig()
	b.SetBytes(int64(2 * m * n * k))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(pe rt.PE) {
			universal.Multiply(pe, c, a, bm, cfg)
		})
	}
	b.StopTimer()
	b.ReportMetric(float64(2*m*n*k)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// Steady-state allocation behaviour of the execute loop (PR 3 acceptance:
// ~0 allocs per plan step once pools are warm). One iteration is a full
// distributed multiply over a shared pool; the allocs/step metric divides
// the run's heap allocations by the number of executed plan steps, so
// per-fetch or per-chain allocations would show up as ≥1.
func BenchmarkExecuteSteadyStateAllocs(b *testing.B) {
	const p, m, n, k = 4, 256, 256, 256
	w := shmem.NewWorld(p)
	// Fine 32×32 tiles give each rank a long plan (hundreds of steps), so
	// the per-plan fixed setup (slot arrays, fetch schedule, worker crew)
	// amortizes away and allocs/step isolates the per-step loop cost.
	part := distmat.Custom{TileRows: 32, TileCols: 32, ProcRows: 2, ProcCols: 2}
	a := distmat.New(w, m, k, part, 1)
	bm := distmat.New(w, k, n, part, 1)
	c := distmat.New(w, m, n, part, 1)
	cfg := universal.DefaultConfig()
	cfg.Stationary = universal.StationaryC
	cfg.Pool = gpusim.NewPool()
	prob := universal.NewProblem(c, a, bm)
	plans := make([]universal.Plan, p)
	steps := 0
	for rank := 0; rank < p; rank++ {
		plans[rank] = universal.BuildPlan(rank, prob, cfg.Stationary, cfg.CacheTiles)
		steps += len(plans[rank].Steps)
	}
	exec := func() {
		w.Run(func(pe rt.PE) {
			universal.ExecutePlan(pe, prob, plans[pe.Rank()], cfg)
			pe.Barrier()
		})
	}
	w.Run(func(pe rt.PE) {
		a.FillRandom(pe, 1)
		bm.FillRandom(pe, 2)
	})
	exec() // warm every pool (tile buffers, partials, accumulate scratch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec()
	}
	b.StopTimer()
	allocs := testing.AllocsPerRun(1, exec)
	b.ReportMetric(allocs/float64(steps), "allocs/step")
}

// BenchmarkSimulateFatTree64 measures scheduler throughput (scheduled
// ops/sec) of the indexed-heap engine on the 64-PE fat-tree DAG
// (bench.FatTree64SchedulerDAG — the same DAG cmd/bench_baseline anchors
// in BENCH_PR*.json) — the PR 5 acceptance metric. The DAG is built once;
// the benchmark times Run alone.
func BenchmarkSimulateFatTree64(b *testing.B) {
	eng, _ := bench.FatTree64SchedulerDAG()
	ops := eng.NumOps()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Run()
	}
	b.StopTimer()
	b.ReportMetric(float64(ops)*float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
	b.ReportMetric(float64(ops), "dag_ops")
}

// BenchmarkSimulateFatTree64ListOracle is the same DAG through the legacy
// O(ready)-scan list scheduler, kept as the baseline the >=10x acceptance
// ratio is measured against (both schedulers produce identical schedules;
// see TestSchedulerEquivalenceAcrossConformanceSystems).
func BenchmarkSimulateFatTree64ListOracle(b *testing.B) {
	eng, _ := bench.FatTree64SchedulerDAG()
	ops := eng.NumOps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunListOracle()
	}
	b.StopTimer()
	b.ReportMetric(float64(ops)*float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}

// Fetch-mode ablation (DESIGN.md design choice): whole-tile fetches with
// an LRU cache versus exact sub-tile fetches. Whole tiles over-fetch when
// a replicated stationary C needs only a k-slice of each tile, but they
// amortize across the many ops sharing a tile; sub-tile fetches move the
// minimum per op but forgo reuse. The benchmark reports both sides so the
// crossover is visible (here reuse wins; TestSubTilePlanMovesFewerBytes
// exhibits the opposite regime).
func BenchmarkFetchModeAblation(b *testing.B) {
	b.ReportAllocs()
	sys := universal.PVCSystem()
	mk := func() universal.Problem {
		w := shmem.NewWorld(12)
		a := distmat.New(w, 2048, 49152, distmat.RowBlock{}, 1)
		bm := distmat.New(w, 49152, 12288, distmat.RowBlock{}, 1)
		c := distmat.New(w, 2048, 12288, distmat.Block2D{}, 3)
		return universal.NewProblem(c, a, bm)
	}
	var full, sub universal.SimResult
	for i := 0; i < b.N; i++ {
		cfgFull := universal.DefaultConfig()
		cfgFull.Stationary = universal.StationaryC
		full = universal.SimulateMultiply(mk(), cfgFull, sys)
		cfgSub := cfgFull
		cfgSub.SubTileFetch = true
		sub = universal.SimulateMultiply(mk(), cfgSub, sys)
	}
	b.ReportMetric(full.Makespan*1e3, "fulltile_ms")
	b.ReportMetric(sub.Makespan*1e3, "subtile_ms")
	b.ReportMetric(float64(full.RemoteGetBytes)/1e6, "fulltile_getMB")
	b.ReportMetric(float64(sub.RemoteGetBytes)/1e6, "subtile_getMB")
}

// Sparse-times-dense (the workload of the paper's 1.5D citation [16]):
// a square sparse matrix times a tall-and-skinny dense matrix, run through
// the same universal algorithm with real arithmetic.
func BenchmarkSparseDenseMultiply(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(60))
	const p, m, n, k = 4, 512, 64, 512
	global := tile.RandomCSR(rng, m, k, 0.05)
	w := shmem.NewWorld(p)
	a := distmat.NewSparse(w, global, distmat.RowBlock{}, 1)
	bm := distmat.New(w, k, n, distmat.RowBlock{}, 1)
	c := distmat.New(w, m, n, distmat.RowBlock{}, 1)
	w.Run(func(pe rt.PE) {
		bm.FillRandom(pe, 1)
	})
	cfg := universal.DefaultConfig()
	b.SetBytes(int64(2 * global.NNZ() * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(pe rt.PE) {
			universal.MultiplySparse(pe, c, a, bm, cfg)
		})
	}
}

// Strong scaling across H100 cluster sizes (multi-node extension of the
// paper's single-node evaluation).
func BenchmarkStrongScaling(b *testing.B) {
	b.ReportAllocs()
	var pts []bench.ScalingPoint
	for i := 0; i < b.N; i++ {
		pts = bench.StrongScaling(bench.MLP1, 8192, []int{1, 2, 4})
	}
	for _, pt := range pts {
		b.ReportMetric(pt.Speedup, fmt.Sprintf("speedup_%dnodes", pt.Nodes))
		b.ReportMetric(pt.Efficiency*100, fmt.Sprintf("eff_pct_%dnodes", pt.Nodes))
	}
}
