// Fabric incast walkthrough: the same eight inter-node transfers are
// priced under the scalar cluster topology and under routed link-graph
// fabrics (internal/fabric), showing the regimes only the fabric can see:
//
//  1. an incast storm — eight peers on eight different nodes push into
//     node 0. The scalar model gives every pair its private share of the
//     NIC, so the storm looks free; a single-NIC fat-tree serializes all
//     eight transfers through node 0's NIC downlink (~8x slower);
//  2. spine oversubscription — rail-oblivious senders share two spine
//     uplinks (≥2x slower);
//  3. the rail-optimized fix — on an 8-rail fat-tree with rail-aligned
//     traffic the same volume rides eight disjoint rails in parallel;
//  4. a rail failure — degrading one NIC link's bandwidth stretches the
//     flows crossing it, visible in the per-link utilization lanes;
//  5. the stream/event view — a small gpubackend world over a routed
//     fabric renders engines and fabric links in one Gantt.
package main

import (
	"fmt"
	"os"

	"slicing"
	"slicing/internal/bench"
	"slicing/internal/fabric"
	"slicing/internal/gpubackend"
	"slicing/internal/gpusim"
	rt "slicing/internal/runtime"
	"slicing/internal/simnet"
	"slicing/internal/trace"
)

const (
	nodes   = 9       // node 0 is the incast victim, nodes 1..8 send
	perNode = 8       // GPUs per node
	elems   = 1 << 20 // 4 MB per transfer
)

// incast runs the storm through the shared driver (bench.IncastStorm —
// the same scenario the acceptance test and the committed BENCH anchor
// measure): sender(i) of node i pushes 4 MB into GPU i-1 of node 0.
// senderGPU selects which GPU (= which rail, on rail-optimized fabrics)
// each node sends from.
func incast(topo simnet.Topology, senderGPU func(node int) int) (float64, slicing.World) {
	return bench.IncastStorm(topo, gpusim.PresetH100Device(), perNode, elems, senderGPU)
}

// hotLinks prints the utilization lanes of the links that carried the
// storm, sorted as reported (link order).
func hotLinks(w slicing.World, seconds float64) {
	links, ok := slicing.FabricStatsOf(w)
	if !ok {
		fmt.Println("  (scalar topology: no per-link accounting)")
		return
	}
	var busy []rt.LinkStats
	for _, l := range links {
		if l.BusySeconds >= 0.05*seconds && l.Bytes > 0 {
			busy = append(busy, l)
		}
	}
	trace.WriteLinkUtilization(os.Stdout, busy, seconds, 40)
}

func main() {
	fromGPU0 := func(int) int { return 0 }                // every node sends from GPU 0
	railAligned := func(node int) int { return node - 1 } // node i sends from GPU i-1 (rail i-1)

	fmt.Printf("incast storm: 8 nodes push 4 MB each into node 0 (%d PEs)\n\n", nodes*perNode)

	// 1. The scalar cluster model cannot see the storm: each pair gets its
	// private 50 GB/s share of the NIC.
	scalar, _ := incast(simnet.PresetH100Cluster(nodes), fromGPU0)
	fmt.Printf("%-44s %8.3f ms\n", "scalar "+simnet.PresetH100Cluster(nodes).Name(), scalar*1e3)

	// 2. A DGX-style single-NIC fat-tree serializes the storm on node 0's
	// NIC downlink.
	dgx := fabric.H100FatTree(nodes, 1, 1)
	single, w := incast(dgx.Topology(), fromGPU0)
	fmt.Printf("%-44s %8.3f ms  (%.1fx slower)\n", dgx.Name(), single*1e3, single/scalar)
	hotLinks(w, single)
	fmt.Println()

	// 3. Rail-optimized but rail-oblivious traffic: every node still sends
	// from GPU 0, so seven of the eight flows cross rails and share rail
	// 0's two oversubscribed spine uplinks.
	spine := fabric.H100FatTree(nodes, 8, 4)
	crossRail, w := incast(spine.Topology(), fromGPU0)
	fmt.Printf("%-44s %8.3f ms  (%.1fx slower: spine oversubscription)\n",
		spine.Name()+", senders on rail 0", crossRail*1e3, crossRail/scalar)
	hotLinks(w, crossRail)
	fmt.Println()

	// 4. Rail-optimized + rail-aligned traffic: eight disjoint rails carry
	// the same volume in parallel.
	rails := fabric.H100FatTree(nodes, 8, 4)
	aligned, w := incast(rails.Topology(), railAligned)
	fmt.Printf("%-44s %8.3f ms  (%.2fx vs scalar)\n", rails.Name()+", rail-aligned", aligned*1e3, aligned/scalar)
	hotLinks(w, aligned)
	fmt.Println()

	// 5. Rail failure: node 0's rail-3 NIC downlink downtrains to a
	// quarter of its bandwidth; only the flow crossing it stretches.
	broken := fabric.H100FatTree(nodes, 8, 4)
	broken.Degrade(broken.LinkID("n0.nic3.ib<"), 0.25)
	degraded, w := incast(broken.Topology(), railAligned)
	fmt.Printf("%-44s %8.3f ms  (rail 3 at 1/4 bandwidth)\n", broken.Name()+", degraded", degraded*1e3)
	hotLinks(w, degraded)
	fmt.Println()

	// 6. The stream/event view: on a 2-PE routed fabric, the gpubackend
	// schedules copy engines and fabric links on one timeline; the Gantt
	// shows the link lanes alongside the device engines.
	mini := fabric.SingleSwitch(2, 50e9, 2000e9, 3e-6, "2xH100 mini fabric")
	gw := gpubackend.New(mini.Topology(), gpusim.PresetH100Device()).NewWorld(2).(*gpubackend.World)
	seg := gw.AllocSymmetric(elems)
	gw.Run(func(pe rt.PE) {
		if pe.Rank() == 0 {
			f1 := pe.GetAsync(make([]float32, elems/2), seg, 1, 0)
			f2 := pe.GetAsync(make([]float32, elems/2), seg, 1, elems/2)
			pe.AccumulateAdd(make([]float32, elems/4), seg, 1, 0)
			f1.Wait()
			f2.Wait()
		}
	})
	fmt.Println("stream/event Gantt over the mini fabric (engines + per-link lanes):")
	trace.WriteTimelineGantt(os.Stdout, gw.Timeline(), 72)
}
