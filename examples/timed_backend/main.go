// Timed backend: run the identical universal multiply on the in-process
// shmem backend and on the simnet-timed backend for both Table 2 systems.
// The timed worlds compute the same real result (verified element-wise
// against the shmem run) while additionally producing a modeled wall-clock
// — Xe Link vs NVLink topologies, port contention, roofline GEMM costs —
// for the execution schedule the runtime actually chose.
package main

import (
	"fmt"
	"log"

	"slicing"
	"slicing/internal/tile"
)

const m, n, k = 768, 512, 640

// operands allocates A, B, C on the world: misaligned partitions, with C
// replicated when the world size allows.
func operands(world slicing.World) (a, b, c *slicing.Matrix) {
	replC := 1
	if world.NumPE()%2 == 0 {
		replC = 2
	}
	a = slicing.NewMatrix(world, m, k, slicing.RowBlock{}, 1)
	b = slicing.NewMatrix(world, k, n, slicing.ColBlock{}, 1)
	c = slicing.NewMatrix(world, m, n, slicing.Block2D{}, replC)
	return a, b, c
}

// multiply runs C = A·B collectively and leaves the result in c.
func multiply(world slicing.World, a, b, c *slicing.Matrix) {
	world.Run(func(pe slicing.PE) {
		a.FillRandom(pe, 1)
		b.FillRandom(pe, 2)
		slicing.Multiply(pe, c, a, b, slicing.DefaultConfig())
	})
}

// gather pulls the full C on a separate world pass, so the measurement of
// the multiply itself is not polluted by verification traffic.
func gather(world slicing.World, c *slicing.Matrix) *tile.Matrix {
	var out *tile.Matrix
	world.Run(func(pe slicing.PE) {
		if pe.Rank() == 0 {
			out = c.Gather(pe, 0)
		}
	})
	return out
}

func main() {
	for _, sys := range []slicing.SimSystem{slicing.PVCSystem(), slicing.H100System()} {
		p := sys.Topo.NumPE()

		refWorld := slicing.NewWorld(p) // untimed shmem backend
		ra, rb, rc := operands(refWorld)
		multiply(refWorld, ra, rb, rc)
		reference := gather(refWorld, rc)

		timedWorld := slicing.NewTimedWorld(sys)
		ta, tb, tc := operands(timedWorld)
		multiply(timedWorld, ta, tb, tc)

		// Snapshot the modeled time and traffic of the multiply before the
		// verification gather adds its own (modeled) transfers.
		seconds, ok := slicing.PredictedTime(timedWorld)
		if !ok {
			log.Fatalf("%s: timed world did not report a predicted time", sys.Topo.Name())
		}
		stats := timedWorld.Stats()

		result := gather(timedWorld, tc)
		worst := 0.0
		for i := range reference.Data {
			d := float64(result.Data[i] - reference.Data[i])
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		if worst > 1e-3 {
			log.Fatalf("%s: backends disagree, max abs diff %g", sys.Topo.Name(), worst)
		}

		fmt.Printf("%-16s p=%-2d  %dx%dx%d multiply: results match (max abs diff %.2g)\n",
			sys.Topo.Name(), p, m, n, k, worst)
		fmt.Printf("%-16s modeled wall-clock %.3f ms, remote traffic %.1f MB get / %.1f MB accum\n\n",
			"", seconds*1e3,
			float64(stats.RemoteGetBytes)/1e6, float64(stats.RemoteAccumBytes)/1e6)
	}
}
