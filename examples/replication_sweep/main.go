// Replication sweep: the §2.1 sliding scale. A fixed problem is multiplied
// with every valid replication factor c of the inputs (c = 1 is a pure 2D
// algorithm, c = p is full replication; intermediate values are the
// 1.5D/2.5D regime), with real arithmetic at small scale to show
// correctness is replication-invariant, and in simulated time at the
// paper's scale to show remote traffic falling as c grows while
// reduce_replicas overhead rises — the tradeoff behind the figures'
// replication annotations.
package main

import (
	"fmt"
	"log"

	"slicing"
	"slicing/internal/tile"
)

func main() {
	const p = 12
	const m, n, k = 120, 96, 144

	// Real arithmetic: same answer for every replication factor.
	fmt.Println("real execution, 12 PEs, all replication factors:")
	for _, c := range []int{1, 2, 3, 4, 6, 12} {
		world := slicing.NewWorld(p)
		a := slicing.NewMatrix(world, m, k, slicing.RowBlock{}, c)
		b := slicing.NewMatrix(world, k, n, slicing.ColBlock{}, c)
		cm := slicing.NewMatrix(world, m, n, slicing.Block2D{}, c)
		world.Run(func(pe slicing.PE) {
			a.FillRandom(pe, 31)
			b.FillRandom(pe, 32)
		})
		world.Run(func(pe slicing.PE) {
			slicing.Multiply(pe, cm, a, b, slicing.DefaultConfig())
		})
		var ok bool
		world.Run(func(pe slicing.PE) {
			if pe.Rank() != 0 {
				return
			}
			ref := tile.New(m, n)
			tile.GemmNaive(ref, a.Gather(pe, 0), b.Gather(pe, 0))
			ok = cm.Gather(pe, 0).AllClose(ref, 1e-3)
		})
		if !ok {
			log.Fatalf("c=%d: verification FAILED", c)
		}
		fmt.Printf("  c=%-2d verified OK\n", c)
	}

	// Simulated time at paper scale: traffic versus replication. All three
	// matrices share one factor c (the MLP-1 methodology): replicas
	// localize input tiles (gets fall) but C replicas must be reduced
	// (accumulate bytes rise), so the optimum sits between the extremes.
	fmt.Println("\nsimulated MLP-2 (m=2048, n=12K, k=48K), 2D blocked, on the PVC preset:")
	fmt.Printf("  %-4s %12s %12s %14s\n", "c", "get (MB)", "accum (MB)", "pct of peak")
	sys := slicing.PVCSystem()
	for _, c := range []int{1, 2, 3, 4, 6} {
		world := slicing.NewWorld(p)
		a := slicing.NewMatrix(world, 2048, 49152, slicing.Block2D{}, c)
		b := slicing.NewMatrix(world, 49152, 12288, slicing.Block2D{}, c)
		cm := slicing.NewMatrix(world, 2048, 12288, slicing.Block2D{}, c)
		cfg := slicing.DefaultConfig()
		cfg.Stationary = slicing.StationaryC
		res := slicing.SimulateMultiply(slicing.NewProblem(cm, a, b), cfg, sys)
		fmt.Printf("  %-4d %12.1f %12.1f %13.1f%%\n",
			c, float64(res.RemoteGetBytes)/1e6, float64(res.RemoteAccumBytes)/1e6, res.PercentOfPeak)
	}
	fmt.Println("\nremote gets fall as replicas localize tiles; accumulate bytes grow with")
	fmt.Println("the reduce_replicas round — the optimum sits between the extremes (§2.1).")
}
