// Quickstart: multiply two distributed matrices with different
// partitionings — no common algorithm supports this pair directly, but the
// universal algorithm handles any combination — and verify the result
// against a serial reference.
package main

import (
	"fmt"
	"log"
	"time"

	"slicing"
	"slicing/internal/tile"
)

func main() {
	const p = 4 // processing elements (simulated GPUs)
	const m, n, k = 512, 384, 448

	world := slicing.NewWorld(p)

	// A is row-partitioned, B column-partitioned, and C 2D-blocked with a
	// replication factor of 2 — a combination no classical algorithm
	// supports without resharding.
	a := slicing.NewMatrix(world, m, k, slicing.RowBlock{}, 1)
	b := slicing.NewMatrix(world, k, n, slicing.ColBlock{}, 1)
	c := slicing.NewMatrix(world, m, n, slicing.Block2D{}, 2)

	world.Run(func(pe slicing.PE) {
		a.FillRandom(pe, 1)
		b.FillRandom(pe, 2)
	})

	// The local GEMM micro-kernel is picked at startup by CPU-feature
	// dispatch (AVX-512 > AVX2/FMA > SSE2 > portable Go).
	fmt.Printf("local GEMM kernel: %s\n", tile.KernelDescription())

	var stat slicing.Stationary
	start := time.Now()
	world.Run(func(pe slicing.PE) {
		stat, _ = slicing.Multiply(pe, c, a, b, slicing.DefaultConfig())
	})
	elapsed := time.Since(start)
	fmt.Printf("multiplied %dx%dx%d over %d PEs (data movement: %v)\n", m, n, k, p, stat)
	fmt.Printf("wall time %v — %.1f GFLOP/s aggregate with the %s kernel\n",
		elapsed.Round(time.Microsecond), tile.Flops(m, n, k)/elapsed.Seconds()/1e9, tile.KernelName())

	// Verify against the serial reference.
	var ok bool
	world.Run(func(pe slicing.PE) {
		if pe.Rank() != 0 {
			return
		}
		ref := tile.New(m, n)
		tile.GemmNaive(ref, a.Gather(pe, 0), b.Gather(pe, 0))
		ok = c.Gather(pe, 0).AllClose(ref, 1e-3)
	})
	if !ok {
		log.Fatal("verification FAILED")
	}
	fmt.Println("verified against serial reference: OK")
}
