// Misaligned: the Figure 1 walk-through. Three matrices with deliberately
// misaligned tile grids are multiplied with Stationary C data movement;
// the program prints the list of local matrix multiply operations the
// slicing pass generates for the process owning C(1,1) — the op list shown
// in the middle of Figure 1 — then executes and verifies the product.
package main

import (
	"fmt"
	"log"

	"slicing"
	"slicing/internal/index"
	"slicing/internal/tile"
)

func main() {
	const p = 4
	const m, n, k = 64, 64, 64

	world := slicing.NewWorld(p)

	// Intentionally misaligned tilings (as in Figure 1): A uses 17-row ×
	// 23-column tiles, B uses 19×15, C uses a regular 2D block — none of
	// the tile boundaries line up.
	a := slicing.NewMatrix(world, m, k, slicing.Custom{TileRows: 17, TileCols: 23, ProcRows: 2, ProcCols: 2}, 1)
	b := slicing.NewMatrix(world, k, n, slicing.Custom{TileRows: 19, TileCols: 15, ProcRows: 2, ProcCols: 2}, 1)
	c := slicing.NewMatrix(world, m, n, slicing.Block2D{ProcRows: 2, ProcCols: 2}, 1)

	prob := slicing.NewProblem(c, a, b)

	// The slicing pass for the rank owning C(1,1).
	target := index.TileIdx{Row: 1, Col: 1}
	owner := c.OwnerRank(target, 0, 0)
	fmt.Printf("process %d owns C%v; its local op list (Stationary C):\n", owner, target)
	for _, op := range slicing.GenerateOps(owner, prob, slicing.StationaryC) {
		if op.CIdx == target {
			fmt.Printf("  C%v[%v,%v] += A%v[%v,%v] * B%v[%v,%v]\n",
				op.CIdx, op.M, op.N, op.AIdx, op.M, op.K, op.BIdx, op.K, op.N)
		}
	}

	// Execute and verify: misalignment changes nothing for the caller.
	world.Run(func(pe slicing.PE) {
		a.FillRandom(pe, 11)
		b.FillRandom(pe, 12)
	})
	cfg := slicing.DefaultConfig()
	cfg.Stationary = slicing.StationaryC
	world.Run(func(pe slicing.PE) {
		slicing.Multiply(pe, c, a, b, cfg)
	})
	var ok bool
	world.Run(func(pe slicing.PE) {
		if pe.Rank() != 0 {
			return
		}
		ref := tile.New(m, n)
		tile.GemmNaive(ref, a.Gather(pe, 0), b.Gather(pe, 0))
		ok = c.Gather(pe, 0).AllClose(ref, 1e-3)
	})
	if !ok {
		log.Fatal("verification FAILED")
	}
	fmt.Println("misaligned product verified: OK")
}
