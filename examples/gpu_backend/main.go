// GPU stream/event backend walkthrough: the same universal multiply runs
// on all three runtime backends — the in-process shmem backend (the
// numeric reference), the single-clock simnet-timed backend, and the
// gpusim stream/event-timed backend — and every backend produces the same
// C. The difference is what the timed runs can see: the stream/event
// backend schedules each get, put, accumulate, and GEMM on modeled
// per-device engines (a compute stream, copy engines, fabric ports), so it
// additionally reports queue-depth contention (async prefetches stacking
// up on a copy engine) and accumulate/GEMM interference (remote
// accumulates occupying the victim device's compute stream, the §5.2 H100
// effect). The single-clock backend, asked through the same
// slicing.StreamStatsOf hook, reports that it cannot observe either.
package main

import (
	"fmt"
	"log"

	"slicing"
	"slicing/internal/tile"
)

const m, n, k = 512, 512, 512

// operands builds an accumulate-heavy layout: column-block A times
// row-block B is the outer-product partitioning, where every rank's GEMM
// results land in other ranks' C tiles.
func operands(world slicing.World) (a, b, c *slicing.Matrix) {
	a = slicing.NewMatrix(world, m, k, slicing.ColBlock{}, 1)
	b = slicing.NewMatrix(world, k, n, slicing.RowBlock{}, 1)
	c = slicing.NewMatrix(world, m, n, slicing.Block2D{}, 1)
	return a, b, c
}

// multiply runs C = A·B with a deep async pipeline and Stationary A, so
// the run both prefetches aggressively (queue depth) and accumulates
// remotely (interference on devices that model it).
func multiply(world slicing.World, a, b, c *slicing.Matrix) {
	cfg := slicing.DefaultConfig()
	cfg.PrefetchDepth = 4
	cfg.MaxInflight = 4
	cfg.Stationary = slicing.StationaryA
	world.Run(func(pe slicing.PE) {
		a.FillRandom(pe, 1)
		b.FillRandom(pe, 2)
		slicing.Multiply(pe, c, a, b, cfg)
	})
}

// gather pulls the full C on a separate world pass so verification traffic
// does not pollute the measured multiply.
func gather(world slicing.World, c *slicing.Matrix) *tile.Matrix {
	var out *tile.Matrix
	world.Run(func(pe slicing.PE) {
		if pe.Rank() == 0 {
			out = c.Gather(pe, 0)
		}
	})
	return out
}

func maxAbsDiff(x, y *tile.Matrix) float64 {
	worst := 0.0
	for i := range x.Data {
		d := float64(x.Data[i] - y.Data[i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

func main() {
	sys := slicing.H100System() // the system whose device models interference
	p := sys.Topo.NumPE()

	// 1. Numeric reference on the untimed shmem backend.
	ref := slicing.NewWorld(p)
	ra, rb, rc := operands(ref)
	multiply(ref, ra, rb, rc)
	want := gather(ref, rc)

	fmt.Printf("%s, %dx%dx%d outer-product multiply, prefetch 4, Stationary A\n\n", sys.Topo.Name(), m, n, k)

	// 2. The same multiply on both timed backends.
	for _, backend := range []slicing.Backend{
		slicing.SimnetBackend(sys),
		slicing.GpuSimBackend(sys),
	} {
		world := backend.NewWorld(p)
		a, b, c := operands(world)
		multiply(world, a, b, c)

		seconds, ok := slicing.PredictedTime(world)
		if !ok {
			log.Fatalf("%s: timed world did not report a predicted time", backend.Name())
		}
		ss, streamed := slicing.StreamStatsOf(world)

		if d := maxAbsDiff(want, gather(world, c)); d > 1e-3 {
			log.Fatalf("%s: backends disagree, max abs diff %g", backend.Name(), d)
		}

		fmt.Printf("%-22s modeled wall-clock %8.3f ms  (C matches reference)\n", backend.Name(), seconds*1e3)
		if streamed {
			fmt.Printf("%-22s %d stream ops: queue delay %.3f ms, accumulate/GEMM interference %.3f ms\n\n",
				"", ss.StreamOps, ss.QueueDelaySeconds*1e3, ss.AccumInterferenceSeconds*1e3)
		} else {
			fmt.Printf("%-22s single-clock model: queue depth and interference not observable\n\n", "")
		}
	}
}
