// GPT MLP: the workload the paper's evaluation is built around (§5.2.1).
// A transformer MLP block is two chained distributed matmuls:
//
//	H = X · W1   (MLP-1: expand hidden dim h -> 4h)
//	Y = H · W2   (MLP-2: shrink 4h -> h)
//
// This example runs the block twice at a reduced scale with real
// arithmetic — once with Megatron-LM-style partitionings (X replicated,
// W1 column-split; H column-split, W2 row-split, outer product) and once
// with sequence-parallel-style partitionings (X row-split, weights
// replicated) — then simulates both at the paper's full 12K hidden size on
// the H100 preset and reports percent of peak.
package main

import (
	"fmt"
	"log"

	"slicing"
	"slicing/internal/tile"
)

const (
	p = 4
	// Reduced-scale dims for the real-arithmetic pass.
	batch, hidden = 96, 128
)

// runBlock multiplies X·W1 then H·W2 with the given partitionings and
// verifies the chained result.
func runBlock(name string, px, pw1, ph, pw2, py slicing.Partition, cX, cW1, cH, cW2, cY int) {
	world := slicing.NewWorld(p)
	x := slicing.NewMatrix(world, batch, hidden, px, cX)
	w1 := slicing.NewMatrix(world, hidden, 4*hidden, pw1, cW1)
	h := slicing.NewMatrix(world, batch, 4*hidden, ph, cH)
	w2 := slicing.NewMatrix(world, 4*hidden, hidden, pw2, cW2)
	y := slicing.NewMatrix(world, batch, hidden, py, cY)

	world.Run(func(pe slicing.PE) {
		x.FillRandom(pe, 21)
		w1.FillRandom(pe, 22)
		w2.FillRandom(pe, 23)
	})
	cfg := slicing.DefaultConfig()
	world.Run(func(pe slicing.PE) {
		slicing.Multiply(pe, h, x, w1, cfg) // MLP-1
		slicing.Multiply(pe, y, h, w2, cfg) // MLP-2, consumes H in place
	})

	var ok bool
	world.Run(func(pe slicing.PE) {
		if pe.Rank() != 0 {
			return
		}
		refH := tile.New(batch, 4*hidden)
		tile.GemmNaive(refH, x.Gather(pe, 0), w1.Gather(pe, 0))
		refY := tile.New(batch, hidden)
		tile.GemmNaive(refY, refH, w2.Gather(pe, 0))
		ok = y.Gather(pe, 0).AllClose(refY, 1e-2)
	})
	if !ok {
		log.Fatalf("%s: MLP block verification FAILED", name)
	}
	fmt.Printf("%-20s MLP block (batch %d, hidden %d) verified: OK\n", name, batch, hidden)
}

func simulateFullScale() {
	sys := slicing.H100System()
	const fullBatch, h = 4096, 12288
	fmt.Printf("\nfull-scale simulation on %d simulated H100s (batch %d, hidden %d):\n",
		8, fullBatch, h)
	for _, layer := range []struct {
		name    string
		m, n, k int
	}{
		{"MLP-1 (column)", fullBatch, 4 * h, h},
		{"MLP-2 (outer prod)", fullBatch, h, 4 * h},
	} {
		world := slicing.NewWorld(8)
		var a, b, c *slicing.Matrix
		if layer.name[0:5] == "MLP-1" {
			// Megatron: replicated input, column-split weight.
			a = slicing.NewMatrix(world, layer.m, layer.k, slicing.RowBlock{}, 8)
			b = slicing.NewMatrix(world, layer.k, layer.n, slicing.ColBlock{}, 1)
			c = slicing.NewMatrix(world, layer.m, layer.n, slicing.ColBlock{}, 1)
		} else {
			// Outer product: column-split activation, row-split weight.
			a = slicing.NewMatrix(world, layer.m, layer.k, slicing.ColBlock{}, 1)
			b = slicing.NewMatrix(world, layer.k, layer.n, slicing.RowBlock{}, 1)
			c = slicing.NewMatrix(world, layer.m, layer.n, slicing.Block2D{}, 1)
		}
		res := slicing.SimulateMultiply(slicing.NewProblem(c, a, b), slicing.DefaultConfig(), sys)
		fmt.Printf("  %-20s %6.1f%% of peak (%v, %.3f ms)\n",
			layer.name, res.PercentOfPeak, res.Stationary, res.Makespan*1e3)
	}
}

// runBackward computes the backward pass of a single linear layer
// Y = X·W under distributed partitionings: dX = dY·Wᵀ and dW = Xᵀ·dY,
// using the one-sided distributed transpose. This is the moment sequence
// parallelism must communicate the weights (§2.2).
func runBackward() {
	world := slicing.NewWorld(p)
	x := slicing.NewMatrix(world, batch, hidden, slicing.RowBlock{}, 1)    // sequence-split activations
	w := slicing.NewMatrix(world, hidden, 4*hidden, slicing.ColBlock{}, 1) // column-split weight
	dy := slicing.NewMatrix(world, batch, 4*hidden, slicing.RowBlock{}, 1)

	// Transposed operands, redistributed one-sidedly.
	wT := slicing.NewMatrix(world, 4*hidden, hidden, slicing.RowBlock{}, 1)
	xT := slicing.NewMatrix(world, hidden, batch, slicing.ColBlock{}, 1)
	dx := slicing.NewMatrix(world, batch, hidden, slicing.RowBlock{}, 1)
	dw := slicing.NewMatrix(world, hidden, 4*hidden, slicing.ColBlock{}, 1)

	world.Run(func(pe slicing.PE) {
		x.FillRandom(pe, 41)
		w.FillRandom(pe, 42)
		dy.FillRandom(pe, 43)
	})
	cfg := slicing.DefaultConfig()
	world.Run(func(pe slicing.PE) {
		w.TransposeInto(pe, wT)
		x.TransposeInto(pe, xT)
		slicing.Multiply(pe, dx, dy, wT, cfg) // dX = dY · Wᵀ
		slicing.Multiply(pe, dw, xT, dy, cfg) // dW = Xᵀ · dY
	})

	var ok bool
	world.Run(func(pe slicing.PE) {
		if pe.Rank() != 0 {
			return
		}
		fx := x.Gather(pe, 0)
		fw := w.Gather(pe, 0)
		fdy := dy.Gather(pe, 0)
		refDX := tile.New(batch, hidden)
		tile.GemmT(refDX, fdy, fw, tile.NoTrans, tile.Trans)
		refDW := tile.New(hidden, 4*hidden)
		tile.GemmT(refDW, fx, fdy, tile.Trans, tile.NoTrans)
		ok = dx.Gather(pe, 0).AllClose(refDX, 1e-2) && dw.Gather(pe, 0).AllClose(refDW, 1e-2)
	})
	if !ok {
		log.Fatal("backward pass verification FAILED")
	}
	fmt.Println("backward pass (dX = dY·Wᵀ, dW = Xᵀ·dY) verified: OK")
}

func main() {
	// Megatron-LM tensor parallelism: X replicated, W1 column-split ->
	// H column-split; W2 row-split -> Y via outer product (C 2D-blocked).
	runBlock("megatron",
		slicing.RowBlock{}, slicing.ColBlock{}, slicing.ColBlock{}, slicing.RowBlock{}, slicing.Block2D{},
		p, 1, 1, 1, 1)

	// Sequence parallelism: X row-split, weights replicated.
	runBlock("sequence-parallel",
		slicing.RowBlock{}, slicing.RowBlock{}, slicing.RowBlock{}, slicing.RowBlock{}, slicing.RowBlock{},
		1, p, 1, p, 1)

	runBackward()
	simulateFullScale()
}
