// Sparse SpMM: the sparse-times-dense workload of the paper's related
// work (square sparse matrix × tall-and-skinny dense matrix, the shape
// that motivated 1.5D algorithms). The universal algorithm's slicing pass
// is format-agnostic: the same op generation drives a sparse local kernel
// (CSR windowing + SpMM) with nnz-sized one-sided tile fetches. The
// example distributes a random sparse matrix several ways, multiplies,
// verifies, and reports how tile nnz varies across the grid.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"slicing"
	"slicing/internal/index"
	"slicing/internal/tile"
)

func main() {
	const p = 4
	const m, k, n = 600, 600, 48 // square sparse A, tall-skinny dense B
	const density = 0.03

	rng := rand.New(rand.NewSource(7))
	global := tile.RandomCSR(rng, m, k, density)
	fmt.Printf("sparse A: %dx%d, %d non-zeros (%.1f%% dense)\n",
		m, k, global.NNZ(), 100*float64(global.NNZ())/float64(m*k))

	for _, layout := range []struct {
		name string
		part slicing.Partition
		repl int
	}{
		{"row-block", slicing.RowBlock{}, 1},
		{"2d-block", slicing.Block2D{}, 1},
		{"row-block, c=2 (1.5D style)", slicing.RowBlock{}, 2},
	} {
		world := slicing.NewWorld(p)
		a := slicing.NewSparseMatrix(world, global, layout.part, layout.repl)
		b := slicing.NewMatrix(world, k, n, slicing.RowBlock{}, 1)
		c := slicing.NewMatrix(world, m, n, slicing.RowBlock{}, 1)

		world.Run(func(pe slicing.PE) {
			b.FillRandom(pe, 11)
		})
		world.Run(func(pe slicing.PE) {
			slicing.MultiplySparse(pe, c, a, b, slicing.DefaultConfig())
		})

		var ok bool
		world.Run(func(pe slicing.PE) {
			if pe.Rank() != 0 {
				return
			}
			ref := tile.New(m, n)
			tile.SpMM(ref, global, b.Gather(pe, 0))
			ok = c.Gather(pe, 0).AllClose(ref, 1e-3)
		})
		if !ok {
			log.Fatalf("%s: verification FAILED", layout.name)
		}
		fmt.Printf("  %-28s verified OK", layout.name)

		// Tile nnz spread: sparse problems can be load-imbalanced.
		tr, tc := a.GridShape()
		minNNZ, maxNNZ := -1, 0
		for r := 0; r < tr; r++ {
			for col := 0; col < tc; col++ {
				nnz := a.TileNNZ(index.TileIdx{Row: r, Col: col})
				if minNNZ < 0 || nnz < minNNZ {
					minNNZ = nnz
				}
				if nnz > maxNNZ {
					maxNNZ = nnz
				}
			}
		}
		fmt.Printf("  (tile nnz %d..%d)\n", minNNZ, maxNNZ)
	}
}
