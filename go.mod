module slicing

go 1.24
