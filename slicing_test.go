package slicing_test

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"slicing"
	"slicing/internal/tile"
)

// TestPublicAPIQuickstart exercises the documented quick-start flow end to
// end through the façade only.
func TestPublicAPIQuickstart(t *testing.T) {
	const p, m, n, k = 4, 32, 28, 36
	world := slicing.NewWorld(p)
	a := slicing.NewMatrix(world, m, k, slicing.RowBlock{}, 1)
	b := slicing.NewMatrix(world, k, n, slicing.ColBlock{}, 1)
	c := slicing.NewMatrix(world, m, n, slicing.Block2D{}, 2)

	var ref, got *tile.Matrix
	world.Run(func(pe slicing.PE) {
		a.FillRandom(pe, 1)
		b.FillRandom(pe, 2)
	})
	world.Run(func(pe slicing.PE) {
		if pe.Rank() == 0 {
			fa := a.Gather(pe, 0)
			fb := b.Gather(pe, 0)
			ref = tile.New(m, n)
			tile.GemmNaive(ref, fa, fb)
		}
	})
	world.Run(func(pe slicing.PE) {
		stat, _ := slicing.Multiply(pe, c, a, b, slicing.DefaultConfig())
		if stat != slicing.StationaryC && stat != slicing.StationaryA && stat != slicing.StationaryB {
			t.Errorf("unexpected stationary %v", stat)
		}
	})
	world.Run(func(pe slicing.PE) {
		if pe.Rank() == 0 {
			got = c.Gather(pe, 0)
		}
	})
	if !got.AllClose(ref, 1e-3) {
		t.Fatalf("quickstart result mismatch: %g", got.MaxAbsDiff(ref))
	}
}

func TestPublicAPISimulation(t *testing.T) {
	world := slicing.NewWorld(8)
	a := slicing.NewMatrix(world, 1024, 1024, slicing.RowBlock{}, 1)
	b := slicing.NewMatrix(world, 1024, 1024, slicing.ColBlock{}, 1)
	c := slicing.NewMatrix(world, 1024, 1024, slicing.Block2D{}, 1)
	prob := slicing.NewProblem(c, a, b)
	res := slicing.SimulateMultiply(prob, slicing.DefaultConfig(), slicing.H100System())
	if res.PercentOfPeak <= 0 {
		t.Fatalf("simulation produced %v", res)
	}
}

func TestPublicAPIOpGeneration(t *testing.T) {
	world := slicing.NewWorld(4)
	a := slicing.NewMatrix(world, 16, 16, slicing.RowBlock{}, 1)
	b := slicing.NewMatrix(world, 16, 16, slicing.ColBlock{}, 1)
	c := slicing.NewMatrix(world, 16, 16, slicing.Block2D{}, 1)
	prob := slicing.NewProblem(c, a, b)
	total := 0
	for rank := 0; rank < 4; rank++ {
		total += len(slicing.GenerateOps(rank, prob, slicing.StationaryC))
	}
	if total == 0 {
		t.Fatal("no ops generated through public API")
	}
}

func ExampleMultiply() {
	world := slicing.NewWorld(4)
	a := slicing.NewMatrix(world, 8, 8, slicing.RowBlock{}, 1)
	b := slicing.NewMatrix(world, 8, 8, slicing.ColBlock{}, 1)
	c := slicing.NewMatrix(world, 8, 8, slicing.Block2D{}, 1)
	world.Run(func(pe slicing.PE) {
		a.FillRandom(pe, 1)
		b.FillRandom(pe, 2)
		slicing.Multiply(pe, c, a, b, slicing.DefaultConfig())
	})
	fmt.Println("done")
	// Output: done
}

func TestChooseStationaryAdvisor(t *testing.T) {
	world := slicing.NewWorld(12)
	// MLP-2-like: B is the giant matrix; the advisor must not move it.
	a := slicing.NewMatrix(world, 1024, 49152, slicing.ColBlock{}, 1)
	b := slicing.NewMatrix(world, 49152, 12288, slicing.RowBlock{}, 1)
	c := slicing.NewMatrix(world, 1024, 12288, slicing.Block2D{}, 1)
	prob := slicing.NewProblem(c, a, b)
	stat, cost := slicing.ChooseStationary(prob, slicing.PVCSystem())
	if cost <= 0 {
		t.Fatalf("advisor cost = %g", cost)
	}
	if stat == slicing.StationaryC {
		t.Fatalf("advisor picked StationaryC despite a giant B")
	}
}

func TestPublicAPICyclicPartitions(t *testing.T) {
	world := slicing.NewWorld(3)
	m := slicing.NewMatrix(world, 9, 9, slicing.RowCyclic{}, 1)
	if m.Grid().NumTiles() != 9 {
		t.Fatalf("pure cyclic should have 9 row blocks, got %d", m.Grid().NumTiles())
	}
}

// TestPublicAPITimedBackends runs the quickstart multiply on all three
// backend constructors the façade exposes and checks the capability
// hooks: both timed backends report a predicted time, only the
// stream/event backend reports stream stats, and the untimed backend
// reports neither.
func TestPublicAPITimedBackends(t *testing.T) {
	sys := slicing.H100System()
	run := func(world slicing.World) {
		a := slicing.NewMatrix(world, 96, 64, slicing.RowBlock{}, 1)
		b := slicing.NewMatrix(world, 64, 80, slicing.ColBlock{}, 1)
		c := slicing.NewMatrix(world, 96, 80, slicing.Block2D{}, 1)
		world.Run(func(pe slicing.PE) {
			a.FillRandom(pe, 1)
			b.FillRandom(pe, 2)
			slicing.Multiply(pe, c, a, b, slicing.DefaultConfig())
		})
	}

	plain := slicing.NewWorld(sys.Topo.NumPE())
	run(plain)
	if _, ok := slicing.PredictedTime(plain); ok {
		t.Fatal("untimed world reported a predicted time")
	}
	if _, ok := slicing.StreamStatsOf(plain); ok {
		t.Fatal("untimed world reported stream stats")
	}

	timed := slicing.NewTimedWorld(sys)
	run(timed)
	if sec, ok := slicing.PredictedTime(timed); !ok || sec <= 0 {
		t.Fatalf("simnet-timed world predicted (%g, %v)", sec, ok)
	}
	if _, ok := slicing.StreamStatsOf(timed); ok {
		t.Fatal("single-clock world reported stream stats")
	}

	streamed := slicing.NewStreamTimedWorld(sys)
	run(streamed)
	if sec, ok := slicing.PredictedTime(streamed); !ok || sec <= 0 {
		t.Fatalf("stream-timed world predicted (%g, %v)", sec, ok)
	}
	if ss, ok := slicing.StreamStatsOf(streamed); !ok || ss.StreamOps == 0 {
		t.Fatalf("stream-timed world reported stats (%+v, %v)", ss, ok)
	}
}

// TestPublicAPIServing exercises the multiply-as-a-service surface through
// the façade: a server over one world, two tenants, cached compiled plans,
// results checked against the serial reference.
func TestPublicAPIServing(t *testing.T) {
	const p, m, n, k = 4, 24, 20, 16
	world := slicing.NewWorld(p)
	a := slicing.NewMatrix(world, m, k, slicing.Block2D{}, 1)
	b := slicing.NewMatrix(world, k, n, slicing.Block2D{}, 1)
	c1 := slicing.NewMatrix(world, m, n, slicing.Block2D{}, 1)
	c2 := slicing.NewMatrix(world, m, n, slicing.Block2D{}, 1)

	var ref *tile.Matrix
	world.Run(func(pe slicing.PE) {
		a.FillRandom(pe, 7)
		b.FillRandom(pe, 8)
		if pe.Rank() == 0 {
			ref = tile.New(m, n)
			tile.GemmNaive(ref, a.Gather(pe, 0), b.Gather(pe, 0))
		}
	})

	srv := slicing.NewServer(world, slicing.ServerConfig{Batch: 2})
	var wg sync.WaitGroup
	for _, req := range []struct {
		tenant string
		c      *slicing.Matrix
	}{{"alice", c1}, {"bob", c2}} {
		wg.Add(1)
		go func(tenant string, c *slicing.Matrix) {
			defer wg.Done()
			if _, err := srv.Multiply(context.Background(), tenant, c, a, b); err != nil {
				t.Errorf("tenant %s: %v", tenant, err)
			}
		}(req.tenant, req.c)
	}
	wg.Wait()
	st := srv.Stats()
	srv.Close()

	if st.Served != 2 {
		t.Fatalf("served %d, want 2", st.Served)
	}
	if st.PlanCache.Builds != 1 {
		t.Fatalf("plan builds %d, want 1 (second request must hit the cache)", st.PlanCache.Builds)
	}
	world.Run(func(pe slicing.PE) {
		if pe.Rank() != 0 {
			return
		}
		for _, c := range []*slicing.Matrix{c1, c2} {
			got := c.Gather(pe, 0)
			for i := range got.Data {
				d := got.Data[i] - ref.Data[i]
				if d < 0 {
					d = -d
				}
				if d > 1e-3 {
					t.Fatalf("served result diverges from reference at %d: %g vs %g", i, got.Data[i], ref.Data[i])
				}
			}
		}
	})
}

// TestPublicAPIPlanCache round-trips a compiled plan through JSON and a
// cache via the façade types.
func TestPublicAPIPlanCache(t *testing.T) {
	const p, m, n, k = 2, 12, 10, 8
	world := slicing.NewWorld(p)
	a := slicing.NewMatrix(world, m, k, slicing.RowBlock{}, 1)
	b := slicing.NewMatrix(world, k, n, slicing.ColBlock{}, 1)
	c := slicing.NewMatrix(world, m, n, slicing.Block2D{}, 1)
	prob := slicing.NewProblem(c, a, b)
	cfg := slicing.DefaultConfig()

	cp := slicing.CompilePlans(prob, cfg)
	if cp.Key != slicing.PlanKeyOf(prob, cfg) {
		t.Fatal("compiled plan key does not match PlanKeyOf")
	}
	blob, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var back slicing.CompiledPlan
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Key != cp.Key {
		t.Fatal("round-tripped plan changed key")
	}
	cache := slicing.NewPlanCache(4)
	cache.Put(&back)
	if _, ok := cache.Get(cp.Key); !ok {
		t.Fatal("restored plan not retrievable from cache")
	}
	if same := slicing.PlansOf(world); same != slicing.PlansOf(world) {
		t.Fatal("PlansOf must return a stable per-world cache")
	}
}
