// Package slicing is a Go reproduction of "Slicing Is All You Need:
// Towards A Universal One-Sided Algorithm for Distributed Matrix
// Multiplication" (Brock & Golin, SC 2025).
//
// It provides a single distributed matrix multiplication algorithm that
// supports every combination of partitionings (1D row/column block, 2D
// block, ScaLAPACK-style block-cyclic, deliberately misaligned tilings)
// and replication factors for all three operands of C = A·B, using only
// one-sided communication primitives (remote get and remote accumulate)
// over an in-process PGAS runtime.
//
// Quick start:
//
//	world := slicing.NewWorld(4)
//	a := slicing.NewMatrix(world, m, k, slicing.RowBlock{}, 1)
//	b := slicing.NewMatrix(world, k, n, slicing.ColBlock{}, 1)
//	c := slicing.NewMatrix(world, m, n, slicing.Block2D{}, 1)
//	world.Run(func(pe slicing.PE) {
//	    a.FillRandom(pe, 1)
//	    b.FillRandom(pe, 2)
//	    slicing.Multiply(pe, c, a, b, slicing.DefaultConfig())
//	})
//
// The package is a façade: the implementation lives in internal/ packages
// (index arithmetic, local GEMM kernels, the PGAS runtime, the distributed
// matrix data structure, the universal algorithm, IR lowering, cost model,
// baselines, and the benchmark harness that regenerates the paper's
// figures).
package slicing

import (
	"slicing/internal/costmodel"
	"slicing/internal/distmat"
	"slicing/internal/gpubackend"
	"slicing/internal/gpusim"
	"slicing/internal/modelworld"
	"slicing/internal/runtime"
	"slicing/internal/serve"
	"slicing/internal/shmem"
	"slicing/internal/simbackend"
	"slicing/internal/sweep"
	"slicing/internal/tile"
	"slicing/internal/universal"
)

// World is a collection of processing elements sharing a symmetric heap.
// It is the backend-independent world interface of internal/runtime;
// NewWorld returns the in-process shmem implementation and NewTimedWorld
// the simnet-timed one.
type World = runtime.World

// PE is one processing element's handle, valid inside World.Run: the
// paper's one-sided primitive set (remote get, remote accumulate, put,
// futures, barrier) as a backend-independent interface.
type PE = runtime.PE

// Backend constructs worlds of one runtime flavour.
type Backend = runtime.Backend

// Stats aggregates a world's one-sided traffic counters.
type Stats = runtime.Stats

// SegmentID names a symmetric-heap allocation.
type SegmentID = runtime.SegmentID

// Allocator abstracts symmetric allocation (both World and PE satisfy it).
type Allocator = runtime.Allocator

// NewWorld creates a world of p processing elements (goroutine-backed, one
// per simulated GPU) on the in-process shmem backend.
func NewWorld(p int) World { return shmem.NewWorld(p) }

// ShmemBackend returns the in-process PGAS backend.
func ShmemBackend() Backend { return shmem.Backend{} }

// SimnetBackend returns the simnet-timed backend for sys: its worlds
// perform the same real computation while modeling wall-clock over sys's
// interconnect and device (port contention, roofline GEMMs) with one
// virtual clock per PE.
func SimnetBackend(sys SimSystem) Backend { return simbackend.New(sys.Topo, sys.Dev) }

// GpuSimBackend returns the gpusim stream/event-timed backend for sys: its
// worlds schedule every operation on modeled per-device engines (a compute
// stream and copy engines per PE, plus fabric ports), so timed runs expose
// queue-depth contention and accumulate/GEMM interference (§5.2) that the
// single-clock simnet backend cannot see. Read the extra signals with
// StreamStatsOf.
func GpuSimBackend(sys SimSystem) Backend { return gpubackend.New(sys.Topo, sys.Dev) }

// NewTimedWorld creates a world on the simnet-timed backend for sys. The
// world computes real results; PredictedTime reports its modeled runtime.
func NewTimedWorld(sys SimSystem) World {
	return SimnetBackend(sys).NewWorld(sys.Topo.NumPE())
}

// NewStreamTimedWorld creates a world on the gpusim stream/event-timed
// backend for sys.
func NewStreamTimedWorld(sys SimSystem) World {
	return GpuSimBackend(sys).NewWorld(sys.Topo.NumPE())
}

// PredictedTime returns the modeled wall-clock of a world created on any
// timed backend (simnet or gpusim), and ok=false for untimed backends.
func PredictedTime(w World) (seconds float64, ok bool) {
	return runtime.PredictedTimeOf(w)
}

// StreamStats reports the delay signals only a stream/event-timed backend
// can observe: queue delay behind busy engines and the time remote
// accumulates occupied victim compute engines.
type StreamStats = runtime.StreamStats

// StreamStatsOf returns w's stream-level delay signals, and ok=false when
// w's backend does not model per-device streams (the shmem backend and the
// single-clock simnet backend alike).
func StreamStatsOf(w World) (StreamStats, bool) {
	return runtime.StreamStatsOf(w)
}

// Matrix is a distributed dense matrix: shape × partition × replication.
type Matrix = distmat.Matrix

// Partition defines how a matrix is tiled and which slot owns each tile.
type Partition = distmat.Partition

// The partitioning vocabulary of the paper: 1D row/column block, 2D block,
// and ScaLAPACK-style custom descriptors (tile shape + process grid,
// block-cyclic), which also express misaligned tilings.
type (
	RowBlock  = distmat.RowBlock
	ColBlock  = distmat.ColBlock
	Block2D   = distmat.Block2D
	Custom    = distmat.Custom
	RowCyclic = distmat.RowCyclic
	ColCyclic = distmat.ColCyclic
)

// LocalReplica selects the calling PE's own replica in tile primitives.
const LocalReplica = distmat.LocalReplica

// NewMatrix allocates a distributed rows×cols matrix. The replication
// factor must divide the world size. Pass the *World before Run, or the
// *PE for a collective allocation inside Run.
func NewMatrix(alloc Allocator, rows, cols int, part Partition, replication int) *Matrix {
	return distmat.New(alloc, rows, cols, part, replication)
}

// Stationary selects the data movement strategy (Stationary A, B, or C).
type Stationary = universal.Stationary

// Stationary strategy constants; StationaryAuto keeps the largest matrix
// in place, the heuristic the paper recommends.
const (
	StationaryAuto = universal.StationaryAuto
	StationaryA    = universal.StationaryA
	StationaryB    = universal.StationaryB
	StationaryC    = universal.StationaryC
)

// Config tunes direct execution (§4.2): prefetch depth, bounded
// GEMM/accumulate concurrency, tile cache, memory pool.
type Config = universal.Config

// DefaultConfig returns the paper's direct-execution settings.
func DefaultConfig() Config {
	cfg := universal.DefaultConfig()
	cfg.SyncReplicas = true
	return cfg
}

// Multiply computes C = A·B with the universal one-sided algorithm for any
// combination of partitionings and replication factors. Collective: every
// PE must call it. Returns the resolved stationary strategy and, on
// fault-capable backends, the rank's first fatal one-sided fault after
// per-op retries (always nil on the in-process and simulated backends);
// see docs/RESILIENCE.md for the error taxonomy and retry budget.
func Multiply(pe PE, c, a, b *Matrix, cfg Config) (Stationary, error) {
	return universal.Multiply(pe, c, a, b, cfg)
}

// Problem bundles validated operands for advanced entry points
// (op generation, plans, simulation).
type Problem = universal.Problem

// NewProblem validates shapes and world-sharing for C = A·B.
func NewProblem(c, a, b *Matrix) Problem { return universal.NewProblem(c, a, b) }

// LocalOp is one generated local multiply: C(CIdx)[M×N] += A(AIdx)[M×K] ·
// B(BIdx)[K×N].
type LocalOp = universal.LocalOp

// GenerateOps runs the slicing pass of §4.1 for one rank.
func GenerateOps(rank int, p Problem, stat Stationary) []LocalOp {
	return universal.GenerateOps(rank, p, stat)
}

// SimSystem bundles an interconnect topology and a device model for
// simulated-time execution (the performance model behind Figures 2-3).
type SimSystem = universal.SimSystem

// SimResult reports a simulated multiply (makespan, percent of peak,
// traffic).
type SimResult = universal.SimResult

// PVCSystem returns the 12-tile Intel PVC node of Table 2.
func PVCSystem() SimSystem { return universal.PVCSystem() }

// H100System returns the 8-GPU Nvidia H100 node of Table 2.
func H100System() SimSystem { return universal.H100System() }

// PVCFabricSystem is PVCSystem with the link-routed network fabric
// (internal/fabric) installed: timed backends contend on individual MDFI
// bridges and Xe Link ports instead of one scalar port pair per tile.
func PVCFabricSystem() SimSystem { return universal.PVCFabricSystem() }

// H100FabricSystem is H100System with the link-routed fabric installed.
func H100FabricSystem() SimSystem { return universal.H100FabricSystem() }

// H100FatTreeSystem is a cluster of H100 nodes behind a rail-optimized IB
// fat-tree: nodes×8 PEs, railsPerNode NICs per node (1 = DGX-style single
// NIC, 8 = fully rail-optimized), leaf→spine uplinks oversubscribed by
// oversub. Timed worlds over it congest on individual NICs, rails, and
// spine uplinks — incast and oversubscription regimes the scalar
// topologies cannot express — and report per-link accounting through
// FabricStatsOf.
func H100FatTreeSystem(nodes, railsPerNode int, oversub float64) SimSystem {
	return universal.H100FatTreeSystem(nodes, railsPerNode, oversub)
}

// LinkStats reports one fabric link's busy seconds, imposed queue delay,
// and carried payload for a timed run over a link-routed topology.
type LinkStats = runtime.LinkStats

// FabricStatsOf returns w's per-link fabric accounting, and ok=false when
// w's backend is untimed or its topology has no link model (the scalar
// simnet presets).
func FabricStatsOf(w World) ([]LinkStats, bool) {
	return runtime.FabricStatsOf(w)
}

// SimulateMultiply runs the algorithm through the discrete-event
// performance model instead of real arithmetic.
func SimulateMultiply(p Problem, cfg Config, sys SimSystem) SimResult {
	return universal.SimulateMultiply(p, cfg, sys)
}

// Pool is a reusable float32 buffer pool (the §4.2 memory pool).
type Pool = gpusim.Pool

// NewPool returns an empty buffer pool.
func NewPool() *Pool { return gpusim.NewPool() }

// ChooseStationary prices all three data movement strategies with the
// §4.3 cost model on the given system and returns the cheapest together
// with its estimated runtime — the "straightforward to verify via a cost
// model" selection the paper describes. Pass the result as Config.Stationary.
func ChooseStationary(p Problem, sys SimSystem) (Stationary, float64) {
	return costmodel.New(sys.Topo, sys.Dev).ChooseStationary(p)
}

// SparseMatrix is a distributed sparse (tiled CSR) matrix for the
// sparse-times-dense extension.
type SparseMatrix = distmat.Sparse

// CSR is a local compressed-sparse-row matrix.
type CSR = tile.CSR

// NewSparseMatrix distributes a global CSR matrix with the given partition
// and replication factor.
func NewSparseMatrix(alloc Allocator, global *CSR, part Partition, replication int) *SparseMatrix {
	return distmat.NewSparse(alloc, global, part, replication)
}

// MultiplySparse computes C = A·B with a distributed sparse A and dense B
// and C, under any partitioning/replication combination. Collective.
func MultiplySparse(pe PE, c *Matrix, a *SparseMatrix, b *Matrix, cfg Config) Stationary {
	return universal.MultiplySparse(pe, c, a, b, cfg)
}

// PlanKey is the canonical identity of a compiled plan: every problem and
// config spelling that slices identically maps to the same key.
type PlanKey = universal.PlanKey

// PlanKeyOf canonicalizes (problem, config) into its plan-cache key.
func PlanKeyOf(p Problem, cfg Config) PlanKey { return universal.PlanKeyOf(p, cfg) }

// CompiledPlan is an immutable compiled multiply: per-rank step plans plus
// frozen fetch schedules, reusable across every request with the same key
// and serializable (JSON) so tuned plans survive restarts.
type CompiledPlan = universal.CompiledPlan

// CompilePlans runs the slicing pass for all ranks once and freezes the
// result.
func CompilePlans(p Problem, cfg Config) *CompiledPlan { return universal.CompilePlans(p, cfg) }

// PlanCache is a bounded LRU of compiled plans with single-flight
// compilation. Set Config.Plans to one (or use PlansOf) to make Multiply
// reuse compiled plans across calls.
type PlanCache = universal.PlanCache

// NewPlanCache returns a plan cache holding up to capacity plans.
func NewPlanCache(capacity int) *PlanCache { return universal.NewPlanCache(capacity) }

// PlansOf returns the world's shared plan cache, creating it on first use.
func PlansOf(w World) *PlanCache { return universal.PlansOf(w) }

// ModelExecutor is the model-only execution mode: it replays compiled
// plans through a reused discrete-event engine with no real arithmetic and
// no tile allocation, so cluster-scale what-if evaluation (thousands of
// PEs, internal/sweep's grids) runs at full MLP scale. Not safe for
// concurrent use; pool executors instead. See docs/SWEEPS.md.
type ModelExecutor = universal.ModelExecutor

// NewModelExecutor returns a reusable model-only executor.
func NewModelExecutor() *ModelExecutor { return universal.NewModelExecutor() }

// SimulateCompiledTrace replays one compiled plan over a system through a
// fresh model executor and returns the result plus the underlying engine
// run for tracing (the compiled-plan counterpart of SimulateMultiply).
func SimulateCompiledTrace(p Problem, cp *CompiledPlan, cfg Config, sys SimSystem) (SimResult, *gpusim.Engine, gpusim.Result) {
	return universal.SimulateCompiledTrace(p, cp, cfg, sys)
}

// ModelBackend is the metadata-only backend shim: worlds that carry
// segment lengths but no storage, on which plans, plan keys, and autotune
// searches are computed at cluster scale with zero tile memory. Any
// attempt to execute or touch data panics. See docs/SWEEPS.md.
type ModelBackend = modelworld.Backend

// NewModelWorld returns a metadata-only world with p PEs.
func NewModelWorld(p int) *modelworld.World { return modelworld.NewWorld(p) }

// SweepSpec declares a cluster sweep: one MLP layer and batch over a grid
// of H100 fat-tree shapes (node counts × rails × oversubscription ×
// degraded rails). The zero value sweeps the default Figure 2/3-shaped
// grid. See docs/SWEEPS.md.
type SweepSpec = sweep.Spec

// SweepArtifact is the schema-versioned ("sweep/v1"), machine-readable
// result of a cluster sweep — what cmd/cluster_sweep writes as
// SWEEP_*.json.
type SweepArtifact = sweep.Artifact

// RunSweep evaluates every grid point of the spec through the model-only
// executor, sharing compiled plans via cache (nil for a private cache),
// and returns a validated artifact. Deterministic: equal specs produce
// byte-identical artifacts.
func RunSweep(spec SweepSpec, cache *PlanCache) (*SweepArtifact, error) {
	return sweep.Run(spec, cache)
}

// Server is the multiply-as-a-service layer: a long-lived server
// multiplexing concurrent multiply requests from many tenants over one
// world, with bounded admission queues, round-robin fairness, fused
// batching of small GEMMs, deadlines via context, and per-tenant traffic
// accounting. See docs/SERVING.md.
type Server = serve.Server

// ServerConfig tunes a Server.
type ServerConfig = serve.Config

// ServerStats is a server-wide accounting snapshot.
type ServerStats = serve.Stats

// TenantStats is one tenant's accounting snapshot.
type TenantStats = serve.TenantStats

// NewServer creates a serving loop over w and starts its dispatcher. The
// server assumes exclusive use of w until Close.
func NewServer(w World, cfg ServerConfig) *Server { return serve.NewServer(w, cfg) }

// ErrQueueFull and ErrClosed are the Server.Multiply admission errors.
var (
	ErrQueueFull = serve.ErrQueueFull
	ErrClosed    = serve.ErrClosed
)
